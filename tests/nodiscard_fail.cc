// NEGATIVE-COMPILE fixture — this translation unit must FAIL to build.
//
// It is deliberately absent from D3L_TESTS: the status_nodiscard_negative
// ctest (tests/CMakeLists.txt) runs `$CXX -fsyntax-only -Werror=unused-result`
// over it and is registered WILL_FAIL, so the suite goes red if a bare
// discard of a [[nodiscard]] Status or Result<T> ever becomes legal again —
// e.g. if the class-level attribute or the -Werror promotion is dropped.
//
// The sanctioned way to drop a Status is D3L_IGNORE_STATUS(expr, "why");
// the positive half of this contract lives in tests/status_test.cc.
#include "common/status.h"

namespace d3l {

static Status MakeStatus() { return Status::IOError("dropped"); }
static Result<int> MakeResult() { return 7; }

void BareDiscards() {
  MakeStatus();  // error: ignoring [[nodiscard]] Status
  MakeResult();  // error: ignoring [[nodiscard]] Result<int>
}

}  // namespace d3l

#include "ml/logistic.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/scaler.h"

namespace d3l {
namespace {

TEST(LogisticTest, RejectsBadInput) {
  EXPECT_FALSE(TrainLogistic({}, {}).ok());
  EXPECT_FALSE(TrainLogistic({{1.0}}, {1, 0}).ok());
  EXPECT_FALSE(TrainLogistic({{1.0}, {1.0, 2.0}}, {1, 0}).ok());
  EXPECT_FALSE(TrainLogistic({{1.0}, {2.0}}, {1, 2}).ok());
}

TEST(LogisticTest, LearnsLinearlySeparableData) {
  // y = 1 iff x0 > 0.5.
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    double x = rng.UniformDouble();
    xs.push_back({x, rng.UniformDouble()});
    ys.push_back(x > 0.5 ? 1 : 0);
  }
  auto model = TrainLogistic(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->Accuracy(xs, ys), 0.97);
  // The discriminative feature gets the dominant weight.
  EXPECT_GT(std::abs(model->weights()[0]), 5 * std::abs(model->weights()[1]));
}

TEST(LogisticTest, CoefficientSignsMatchDirection) {
  // Distances: smaller -> related(1). Coefficient must be negative.
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    bool related = rng.Chance(0.5);
    double d = related ? rng.UniformDouble(0.0, 0.4) : rng.UniformDouble(0.6, 1.0);
    xs.push_back({d});
    ys.push_back(related ? 1 : 0);
  }
  auto model = TrainLogistic(xs, ys);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->weights()[0], 0);
  EXPECT_GE(model->Accuracy(xs, ys), 0.98);
}

TEST(LogisticTest, ProbabilitiesAreCalibratedOnNoisyData) {
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    double x = rng.UniformDouble(-2, 2);
    double p = 1.0 / (1.0 + std::exp(-2.0 * x));
    xs.push_back({x});
    ys.push_back(rng.Chance(p) ? 1 : 0);
  }
  auto model = TrainLogistic(xs, ys);
  ASSERT_TRUE(model.ok());
  // Recovered coefficient near the generating one (2.0).
  EXPECT_NEAR(model->weights()[0], 2.0, 0.4);
  EXPECT_NEAR(model->PredictProbability({0.0}), 0.5, 0.06);
}

TEST(LogisticTest, RegularizationShrinksWeights) {
  std::vector<std::vector<double>> xs;
  std::vector<int> ys;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    double x = rng.UniformDouble();
    xs.push_back({x});
    ys.push_back(x > 0.5 ? 1 : 0);
  }
  LogisticOptions weak;
  weak.l2 = 1e-4;
  LogisticOptions strong;
  strong.l2 = 10.0;
  auto m_weak = TrainLogistic(xs, ys, weak);
  auto m_strong = TrainLogistic(xs, ys, strong);
  ASSERT_TRUE(m_weak.ok());
  ASSERT_TRUE(m_strong.ok());
  EXPECT_GT(std::abs(m_weak->weights()[0]), std::abs(m_strong->weights()[0]));
}

TEST(ScalerTest, StandardizesColumns) {
  StandardScaler scaler;
  auto out = scaler.FitTransform({{1, 10}, {2, 20}, {3, 30}});
  // Column means 2 and 20 -> transformed mean 0.
  double m0 = (out[0][0] + out[1][0] + out[2][0]) / 3;
  double m1 = (out[0][1] + out[1][1] + out[2][1]) / 3;
  EXPECT_NEAR(m0, 0, 1e-12);
  EXPECT_NEAR(m1, 0, 1e-12);
  // Unit variance.
  double v0 = 0;
  for (const auto& row : out) v0 += row[0] * row[0];
  EXPECT_NEAR(v0 / 3, 1.0, 1e-9);
}

TEST(ScalerTest, ConstantColumnPassthrough) {
  StandardScaler scaler;
  auto out = scaler.FitTransform({{5.0}, {5.0}});
  EXPECT_DOUBLE_EQ(out[0][0], 0.0);  // (x - mean), std 0 guard
}

}  // namespace
}  // namespace d3l

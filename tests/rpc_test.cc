// The RPC wire layer: domain serializer round trips, frame transport over
// real sockets, and — the robustness contract — protocol fuzzing: garbage
// bytes, truncated frames, flipped bits, wrong versions, oversized length
// prefixes and mid-stream disconnects must every one yield a clean Status
// (never a crash), and the server must keep answering fresh connections
// afterwards. Runs under ASan/TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/query.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------- serializer round trips

/// Serializes with `save` inside a section, then decodes with `load` —
/// the exact path request/response payloads take.
template <typename T, typename Save, typename Load>
T RoundTrip(const T& value, Save save, Load load) {
  std::string buffer;
  io::Writer w;
  w.OpenBuffer(&buffer);
  w.BeginSection(io::SectionId("TEST"));
  save(w, value);
  w.EndSection().CheckOK();
  io::Reader r;
  r.OpenBuffer(std::move(buffer)).CheckOK();
  r.OpenSection(io::SectionId("TEST")).CheckOK();
  T decoded = load(r);
  r.status().CheckOK();
  r.EndSection().CheckOK();
  return decoded;
}

TEST(WireStatusTest, RoundTripsEveryCode) {
  const Status statuses[] = {
      Status::OK(),           Status::InvalidArgument("bad arg"),
      Status::IOError("io"),  Status::NotFound("nf"),
      Status::AlreadyExists("ae"), Status::OutOfRange("oor"),
      Status::Internal("in"), Status::Unavailable("gone"),
  };
  for (const Status& s : statuses) {
    Status decoded = RoundTrip(
        s, [](io::Writer& w, const Status& v) { rpc::SaveWireStatus(w, v); },
        [](io::Reader& r) { return rpc::LoadWireStatus(r); });
    EXPECT_EQ(decoded.code(), s.code()) << s.ToString();
    EXPECT_EQ(decoded.message(), s.message());
  }
}

TEST(WireStatusTest, UnknownCodeFromNewerPeerDegradesToInternal) {
  std::string buffer;
  io::Writer w;
  w.OpenBuffer(&buffer);
  w.BeginSection(io::SectionId("TEST"));
  w.WriteU32(999);  // a code this build does not know
  w.WriteString("from the future");
  w.EndSection().CheckOK();
  io::Reader r;
  r.OpenBuffer(std::move(buffer)).CheckOK();
  r.OpenSection(io::SectionId("TEST")).CheckOK();
  Status decoded = rpc::LoadWireStatus(r);
  EXPECT_TRUE(decoded.IsInternal());
  EXPECT_EQ(decoded.message(), "from the future");
}

TEST(WireSerializerTest, MaskRoundTrips) {
  const std::array<bool, core::kNumEvidence> masks[] = {
      {true, true, true, true, true},
      {false, false, false, false, false},
      {true, false, true, false, true},
  };
  for (const auto& mask : masks) {
    auto decoded = RoundTrip(
        mask, [](io::Writer& w, const auto& v) { rpc::SaveMask(w, v); },
        [](io::Reader& r) { return rpc::LoadMask(r); });
    EXPECT_EQ(decoded, mask);
  }
}

TEST(WireSerializerTest, TableRoundTripsCellsExactly) {
  Table original = testutil::FigureS1();
  Table decoded = RoundTrip(
      original, [](io::Writer& w, const Table& t) { rpc::SaveTable(w, t); },
      [](io::Reader& r) { return rpc::LoadTable(r); });
  ASSERT_EQ(decoded.num_columns(), original.num_columns());
  EXPECT_EQ(decoded.name(), original.name());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(decoded.column(c).name(), original.column(c).name());
    ASSERT_EQ(decoded.column(c).size(), original.column(c).size());
    for (size_t i = 0; i < original.column(c).size(); ++i) {
      EXPECT_EQ(decoded.column(c).cell(i), original.column(c).cell(i));
    }
  }
}

TEST(WireSerializerTest, PhasePayloadsRoundTrip) {
  core::CandidateDepthCounts counts;
  counts.counts.resize(2);
  counts.counts[0][0] = {3, 5, 9};
  counts.counts[1][4] = {1};
  auto counts2 = RoundTrip(
      counts,
      [](io::Writer& w, const auto& v) { rpc::SaveDepthCounts(w, v); },
      [](io::Reader& r) { return rpc::LoadDepthCounts(r); });
  ASSERT_EQ(counts2.counts.size(), 2u);
  EXPECT_EQ(counts2.counts[0][0], counts.counts[0][0]);
  EXPECT_EQ(counts2.counts[1][4], counts.counts[1][4]);
  EXPECT_TRUE(counts2.counts[0][1].empty());

  core::CandidateStopDepths stops;
  stops.depths = {{1, 0, 2, 0, 3}, {0, 0, 0, 0, 0}};
  auto stops2 = RoundTrip(
      stops, [](io::Writer& w, const auto& v) { rpc::SaveStopDepths(w, v); },
      [](io::Reader& r) { return rpc::LoadStopDepths(r); });
  EXPECT_EQ(stops2.depths, stops.depths);

  core::CandidateLists lists;
  lists.ids.resize(2);
  lists.ids[0][2] = {4, 8, 15};
  lists.ids[1][0] = {16, 23, 42};
  auto lists2 = RoundTrip(
      lists,
      [](io::Writer& w, const auto& v) { rpc::SaveCandidateLists(w, v); },
      [](io::Reader& r) { return rpc::LoadCandidateLists(r); });
  ASSERT_EQ(lists2.ids.size(), 2u);
  EXPECT_EQ(lists2.ids[0][2], lists.ids[0][2]);
  EXPECT_EQ(lists2.ids[1][0], lists.ids[1][0]);

  std::vector<core::PairDistances> rows(2);
  rows[0].target_column = 1;
  rows[0].attribute_id = 7;
  rows[0].d = {0.5, 0.25, 1.0, 0.125, 0.75};
  rows[1].target_column = 0;
  rows[1].attribute_id = 3;
  auto rows2 = RoundTrip(
      rows, [](io::Writer& w, const auto& v) { rpc::SaveRows(w, v); },
      [](io::Reader& r) { return rpc::LoadRows(r); });
  ASSERT_EQ(rows2.size(), 2u);
  EXPECT_EQ(rows2[0].target_column, 1u);
  EXPECT_EQ(rows2[0].attribute_id, 7u);
  EXPECT_EQ(rows2[0].d, rows[0].d);
  EXPECT_EQ(rows2[1].d, rows[1].d);
}

// --------------------------------------------------------- live-server fixture

class RpcServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("d3l_rpc_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);

    DataLake lake = testutil::FigureLake(2);
    serving::ShardingOptions sharding;
    sharding.num_shards = 2;
    auto report =
        serving::BuildShards(lake, sharding, (dir_ / "deploy").string());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    manifest_path_ = report->manifest_path;

    auto engine = serving::ShardedEngine::Open(manifest_path_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::shared_ptr<const serving::ShardedEngine>(std::move(*engine));

    rpc::RpcServerOptions options;
    options.num_workers = 2;
    options.io_timeout_seconds = 5.0;
    auto server = rpc::RpcServer::Start(engine_, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    server_.reset();
    fs::remove_all(dir_);
  }

  /// Raw loopback connection to the server — the fuzzer's entry point.
  int RawConnect() {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
              0);
    return fd;
  }

  /// The liveness probe every fuzz case ends with: a FRESH connection must
  /// still serve INFO normally.
  void ExpectServerStillHealthy() {
    rpc::RpcClientOptions options;
    options.max_attempts = 1;
    rpc::RpcClient client("127.0.0.1", server_->port(), options);
    const std::string request =
        rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
    auto response = client.CallChecked(rpc::kMethodInfo, request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    rpc::ServerInfo info = rpc::LoadServerInfo(**response);
    ASSERT_TRUE((*response)->status().ok());
    EXPECT_EQ(info.backend.kind, serving::BackendKind::kSharded);
    EXPECT_TRUE(info.serves_all);
  }

  fs::path dir_;
  std::string manifest_path_;
  std::shared_ptr<const serving::ShardedEngine> engine_;
  std::unique_ptr<rpc::RpcServer> server_;
};

TEST_F(RpcServerTest, InfoReportsDeploymentIdentity) {
  rpc::RpcClient client("127.0.0.1", server_->port());
  const std::string request =
      rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  auto response = client.CallChecked(rpc::kMethodInfo, request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  rpc::ServerInfo info = rpc::LoadServerInfo(**response);
  ASSERT_TRUE((*response)->status().ok());
  ASSERT_TRUE((*response)->EndSection().ok());

  const serving::BackendInfo local = engine_->Info();
  EXPECT_EQ(info.backend.num_tables, local.num_tables);
  EXPECT_EQ(info.backend.num_attributes, local.num_attributes);
  EXPECT_EQ(info.backend.options_fingerprint, local.options_fingerprint);
  EXPECT_EQ(info.backend.index_fingerprint, local.index_fingerprint);
  EXPECT_EQ(info.served_shards.size(), 2u);
  EXPECT_EQ(info.served_tables.size(), local.num_tables);
  EXPECT_EQ(core::OptionsFingerprint(info.options), local.options_fingerprint);
}

TEST_F(RpcServerTest, SearchOverTheWireMatchesLocal) {
  const Table target = testutil::FigureTarget();
  auto profiled = engine_->Profile(target);
  ASSERT_TRUE(profiled.ok());
  auto expected = engine_->Search(core::QueryTarget(*profiled), 5,
                                  engine_->options().enabled);
  ASSERT_TRUE(expected.ok());

  rpc::RpcClient client("127.0.0.1", server_->port());
  const std::string request =
      rpc::BuildFrame(rpc::kMethodSearch, [&](io::Writer& w) {
        core::SaveQueryTarget(w, *profiled);
        w.WriteU64(5);
        rpc::SaveMask(w, engine_->options().enabled);
      });
  auto response = client.CallChecked(rpc::kMethodSearch, request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  core::SearchResult remote = core::LoadSearchResult(**response);
  ASSERT_TRUE((*response)->status().ok());
  ASSERT_TRUE((*response)->EndSection().ok());

  ASSERT_EQ(remote.ranked.size(), expected->ranked.size());
  for (size_t i = 0; i < expected->ranked.size(); ++i) {
    EXPECT_EQ(remote.ranked[i].table_index, expected->ranked[i].table_index);
    EXPECT_EQ(remote.ranked[i].distance, expected->ranked[i].distance);
  }
}

TEST_F(RpcServerTest, ApplicationErrorsComeBackAsWireStatuses) {
  rpc::RpcClient client("127.0.0.1", server_->port());
  // An unprofiled (empty) QueryTarget is an InvalidArgument at the engine.
  const std::string request =
      rpc::BuildFrame(rpc::kMethodSearch, [&](io::Writer& w) {
        core::SaveQueryTarget(w, core::QueryTarget{});
        w.WriteU64(5);
        rpc::SaveMask(w, engine_->options().enabled);
      });
  auto response = client.CallChecked(rpc::kMethodSearch, request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument())
      << response.status().ToString();
  ExpectServerStillHealthy();
}

TEST_F(RpcServerTest, StatReturnsPrometheusExposition) {
  rpc::RpcClient client("127.0.0.1", server_->port());
  const std::string request =
      rpc::BuildFrame(rpc::kMethodStat, [](io::Writer&) {});
  auto response = client.CallChecked(rpc::kMethodStat, request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const std::string text = (*response)->ReadString();
  ASSERT_TRUE((*response)->status().ok());
  ASSERT_TRUE((*response)->EndSection().ok());
  EXPECT_NE(text.find("# TYPE d3l_rpc_server_requests_total counter"),
            std::string::npos)
      << text;
  // The STAT request itself is already on the books when the exposition is
  // rendered.
  EXPECT_NE(text.find("d3l_rpc_server_method_requests_total{method=\"STAT\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE d3l_rpc_server_handle_seconds histogram"),
            std::string::npos)
      << text;
}

TEST_F(RpcServerTest, TracedCallStitchesTheServerSubtree) {
  auto context = std::make_shared<obs::TraceContext>();
  rpc::RpcClient client("127.0.0.1", server_->port());
  const std::string request =
      rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  {
    obs::ScopedSpan root(context, "query");
    auto response = client.CallChecked(rpc::kMethodInfo, request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  // query -> rpc:INFO <endpoint> -> serve:INFO (the server's span tree,
  // recorded in its process under the same trace id and attached by the
  // client).
  const obs::Trace trace = context->Snapshot();
  ASSERT_EQ(trace.roots.size(), 1u);
  EXPECT_EQ(trace.roots[0].name, "query");
  ASSERT_EQ(trace.roots[0].children.size(), 1u);
  const obs::Span& rpc_span = trace.roots[0].children[0];
  EXPECT_EQ(rpc_span.name.rfind("rpc:INFO", 0), 0u) << rpc_span.name;
  ASSERT_FALSE(rpc_span.children.empty());
  EXPECT_EQ(rpc_span.children[0].name, "serve:INFO");
}

TEST_F(RpcServerTest, ReloadWithoutHookIsInvalidArgument) {
  rpc::RpcClient client("127.0.0.1", server_->port());
  const std::string request =
      rpc::BuildFrame(rpc::kMethodReload, [](io::Writer&) {});
  auto response = client.CallChecked(rpc::kMethodReload, request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
  ExpectServerStillHealthy();
}

// ------------------------------------------------------------------- fuzzing

TEST_F(RpcServerTest, GarbageBytesYieldCleanErrorNotCrash) {
  const int fd = RawConnect();
  const char garbage[] = "GET / HTTP/1.1\r\nHost: not-a-d3l-peer\r\n\r\n";
  ASSERT_TRUE(rpc::SendAll(fd, garbage, sizeof(garbage) - 1,
                           rpc::After(5.0)).ok());
  // The server reports why before dropping the connection.
  auto response = rpc::RecvFrame(fd, rpc::After(5.0));
  if (response.ok()) {
    EXPECT_EQ(response->method, rpc::kMethodError);
    io::Reader r;
    ASSERT_TRUE(rpc::OpenFrame(r, std::move(*response)).ok());
    Status reported = rpc::LoadWireStatus(r);
    EXPECT_FALSE(reported.ok());
  }
  close(fd);
  ExpectServerStillHealthy();
}

TEST_F(RpcServerTest, WrongProtocolVersionIsRejected) {
  std::string frame = rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  frame[8] = 99;  // the little-endian version field follows the 8-byte magic
  const int fd = RawConnect();
  ASSERT_TRUE(rpc::SendAll(fd, frame.data(), frame.size(), rpc::After(5.0)).ok());
  auto response = rpc::RecvFrame(fd, rpc::After(5.0));
  if (response.ok()) {
    EXPECT_EQ(response->method, rpc::kMethodError);
    io::Reader r;
    ASSERT_TRUE(rpc::OpenFrame(r, std::move(*response)).ok());
    Status reported = rpc::LoadWireStatus(r);
    EXPECT_TRUE(reported.IsInvalidArgument()) << reported.ToString();
  }
  close(fd);
  ExpectServerStillHealthy();
}

TEST_F(RpcServerTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // A hostile length prefix far past kMaxPayloadBytes: the server must
  // refuse up front — were it to trust the prefix, the resize alone would
  // be a multi-terabyte allocation.
  std::string frame = rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  const uint64_t huge = 1ull << 44;
  for (int i = 0; i < 8; ++i) {
    frame[rpc::kFrameHeaderBytes + 4 + i] =
        static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  const int fd = RawConnect();
  ASSERT_TRUE(rpc::SendAll(fd, frame.data(), frame.size(), rpc::After(5.0)).ok());
  auto response = rpc::RecvFrame(fd, rpc::After(5.0));
  if (response.ok()) {
    EXPECT_EQ(response->method, rpc::kMethodError);
  }
  close(fd);
  ExpectServerStillHealthy();
}

TEST_F(RpcServerTest, TruncatedFrameAndMidStreamDisconnectSurvive) {
  const std::string frame =
      rpc::BuildFrame(rpc::kMethodProfile, [&](io::Writer& w) {
        rpc::SaveTable(w, testutil::FigureS2());
      });
  // Cut the stream at several depths: inside the magic, inside the section
  // header, and mid-payload.
  for (size_t keep : {size_t{3}, size_t{14}, frame.size() / 2,
                      frame.size() - 1}) {
    const int fd = RawConnect();
    ASSERT_TRUE(rpc::SendAll(fd, frame.data(), keep, rpc::After(5.0)).ok());
    close(fd);  // mid-stream disconnect
  }
  ExpectServerStillHealthy();
}

TEST_F(RpcServerTest, FlippedBitsNeverCrashTheServer) {
  const std::string frame =
      rpc::BuildFrame(rpc::kMethodProfile, [&](io::Writer& w) {
        rpc::SaveTable(w, testutil::FigureS3());
      });
  // Flip one bit in every byte position in turn. Depending on where it
  // lands (magic, version, length, payload, crc) the server answers with an
  // error status, answers the (still-checksum-valid) request, or drops the
  // connection — but it must survive every single case.
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    std::string mutated = frame;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    const int fd = RawConnect();
    if (!rpc::SendAll(fd, mutated.data(), mutated.size(), rpc::After(5.0)).ok()) {
      close(fd);
      continue;  // server already dropped us mid-send; that's a clean path
    }
    auto response = rpc::RecvFrame(fd, rpc::After(5.0));
    if (response.ok()) {
      io::Reader r;
      const Status opened = rpc::OpenFrame(r, std::move(*response));
      (void)opened;  // any status is acceptable; crashing is not
    }
    close(fd);
  }
  ExpectServerStillHealthy();
}

TEST_F(RpcServerTest, StoppedServerYieldsUnavailableAfterBoundedRetries) {
  const uint16_t port = server_->port();
  server_->Stop();
  rpc::RpcClientOptions options;
  options.connect_timeout_seconds = 0.5;
  options.request_timeout_seconds = 0.5;
  options.max_attempts = 2;
  options.initial_backoff_seconds = 0.01;
  rpc::RpcClient client("127.0.0.1", port, options);
  const std::string request =
      rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  auto response = client.Call(rpc::kMethodInfo, request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnavailable())
      << response.status().ToString();
  // The endpoint and attempt count are in the message for operators.
  EXPECT_NE(response.status().message().find("2 attempts"), std::string::npos)
      << response.status().message();
}

TEST(RpcFrameTest, RoundTripsOverASocketPair) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string frame =
      rpc::BuildFrame(rpc::kMethodDepthCounts, [](io::Writer& w) {
        w.WriteU64(12345);
      });
  ASSERT_TRUE(rpc::SendFrame(fds[0], frame, rpc::After(5.0)).ok());
  auto received = rpc::RecvFrame(fds[1], rpc::After(5.0));
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->method, rpc::kMethodDepthCounts);
  io::Reader r;
  ASSERT_TRUE(rpc::OpenFrame(r, std::move(*received)).ok());
  EXPECT_EQ(r.ReadU64(), 12345u);
  EXPECT_TRUE(r.EndSection().ok());
  close(fds[0]);
  close(fds[1]);
}

TEST(RpcFrameTest, TraceIdRidesTheVersionWord) {
  const std::string frame =
      rpc::BuildFrame(rpc::kMethodInfo, [](io::Writer&) {});
  EXPECT_EQ(rpc::WithTraceId(frame, 0), frame);  // 0 = not tracing
  const std::string traced = rpc::WithTraceId(frame, 0x1122334455667788ull);
  EXPECT_EQ(traced.size(), frame.size() + 8);

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(rpc::SendFrame(fds[0], traced, rpc::After(5.0)).ok());
  auto received = rpc::RecvFrame(fds[1], rpc::After(5.0));
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received->trace_id, 0x1122334455667788ull);
  EXPECT_EQ(received->method, rpc::kMethodInfo);
  io::Reader r;
  EXPECT_TRUE(rpc::OpenFrame(r, std::move(*received)).ok());
  close(fds[0]);
  close(fds[1]);
}

TEST(RpcFrameTest, SpanSectionRoundTripsAndIsResponseOnly) {
  std::string frame =
      rpc::BuildFrame(rpc::kMethodSearch, [](io::Writer& w) {
        w.WriteU64(1);
      });
  std::vector<obs::Span> roots(1);
  roots[0].name = "serve:SRCH";
  roots[0].start_ns = 100;
  roots[0].duration_ns = 2000;
  roots[0].children.push_back({"engine:search", 150, 1800, {}});
  rpc::AppendSpans(&frame, roots);

  // A receiver in server position (allow_spans off) must reject a frame
  // claiming to carry spans — only responses may.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(rpc::SendFrame(fds[0], frame, rpc::After(5.0)).ok());
  auto rejected = rpc::RecvFrame(fds[1], rpc::After(5.0));
  EXPECT_FALSE(rejected.ok());
  close(fds[0]);
  close(fds[1]);

  // A client reading a response decodes the subtree exactly.
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(rpc::SendFrame(fds[0], frame, rpc::After(5.0)).ok());
  auto received =
      rpc::RecvFrame(fds[1], rpc::After(5.0), nullptr, /*allow_spans=*/true);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  ASSERT_FALSE(received->spans_section.empty());
  auto decoded = rpc::DecodeSpans(*received);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].name, "serve:SRCH");
  EXPECT_EQ((*decoded)[0].start_ns, 100u);
  EXPECT_EQ((*decoded)[0].duration_ns, 2000u);
  ASSERT_EQ((*decoded)[0].children.size(), 1u);
  EXPECT_EQ((*decoded)[0].children[0].name, "engine:search");
  // The method payload is still intact behind the appended section.
  io::Reader r;
  ASSERT_TRUE(rpc::OpenFrame(r, std::move(*received)).ok());
  EXPECT_EQ(r.ReadU64(), 1u);
  EXPECT_TRUE(r.EndSection().ok());
  close(fds[0]);
  close(fds[1]);
}

TEST(RpcFrameTest, PeerClosingBeforeAnyByteIsACleanEof) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  close(fds[0]);
  bool clean_eof = false;
  auto received = rpc::RecvFrame(fds[1], rpc::After(5.0), &clean_eof);
  EXPECT_FALSE(received.ok());
  EXPECT_TRUE(clean_eof);
  close(fds[1]);
}

}  // namespace
}  // namespace d3l

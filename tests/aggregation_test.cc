#include "core/aggregation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace d3l::core {
namespace {

TEST(DistanceDistributionsTest, CcdfWeightsFavourSmallDistances) {
  DistanceDistributions dists(1);
  for (double d : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    dists.Observe(0, Evidence::kValue, d);
  }
  dists.Finalize();
  double w_small = dists.Weight(0, Evidence::kValue, 0.1);
  double w_mid = dists.Weight(0, Evidence::kValue, 0.5);
  double w_large = dists.Weight(0, Evidence::kValue, 0.9);
  EXPECT_DOUBLE_EQ(w_small, 0.8);  // 4 of 5 observations exceed 0.1
  EXPECT_DOUBLE_EQ(w_mid, 0.4);
  EXPECT_GT(w_small, w_mid);
  EXPECT_GT(w_mid, w_large);
  EXPECT_GT(w_large, 0);  // floored, never exactly zero
}

TEST(DistanceDistributionsTest, EmptyDistributionGivesFloorWeight) {
  DistanceDistributions dists(1);
  dists.Finalize();
  EXPECT_GT(dists.Weight(0, Evidence::kName, 0.2), 0);
  EXPECT_LT(dists.Weight(0, Evidence::kName, 0.2), 1e-3);
}

TEST(DistanceDistributionsTest, PerColumnIsolation) {
  DistanceDistributions dists(2);
  dists.Observe(0, Evidence::kName, 0.1);
  dists.Observe(0, Evidence::kName, 0.9);
  dists.Observe(1, Evidence::kName, 0.5);
  dists.Finalize();
  // Column 0 has two observations; column 1's single observation does not
  // affect column 0's CCDF.
  EXPECT_DOUBLE_EQ(dists.Weight(0, Evidence::kName, 0.1), 0.5);
  EXPECT_NEAR(dists.Weight(1, Evidence::kName, 0.4), 1.0, 1e-9);
}

PairDistances Row(uint32_t col, uint32_t attr, DistanceVector d) {
  PairDistances r;
  r.target_column = col;
  r.attribute_id = attr;
  r.d = d;
  return r;
}

TEST(AggregateDatasetTest, SingleRowPassesThrough) {
  DistanceDistributions dists(1);
  DistanceVector d = {0.2, 0.4, 0.6, 0.8, 1.0};
  for (size_t t = 0; t < kNumEvidence; ++t) {
    dists.Observe(0, static_cast<Evidence>(t), d[t]);
    dists.Observe(0, static_cast<Evidence>(t), 0.99);  // a worse candidate
  }
  dists.Finalize();
  DistanceVector out = AggregateDataset({Row(0, 0, d)}, dists);
  for (size_t t = 0; t < kNumEvidence; ++t) {
    EXPECT_NEAR(out[t], d[t], 1e-9) << "evidence " << t;
  }
}

TEST(AggregateDatasetTest, WeightedAverageFavoursStrongPairs) {
  // Two rows; the first is the best candidate in the lake for its column
  // (weight ~1), the second the worst (weight ~floor). Eq. 1 should land
  // near the first row's distance.
  DistanceDistributions dists(2);
  for (double d : {0.1, 0.5, 0.7, 0.9}) dists.Observe(0, Evidence::kValue, d);
  for (double d : {0.1, 0.5, 0.7, 0.9}) dists.Observe(1, Evidence::kValue, d);
  dists.Finalize();

  DistanceVector strong = MaxDistances();
  strong[static_cast<size_t>(Evidence::kValue)] = 0.1;
  DistanceVector weak = MaxDistances();
  weak[static_cast<size_t>(Evidence::kValue)] = 0.9;

  DistanceVector out = AggregateDataset({Row(0, 0, strong), Row(1, 1, weak)}, dists);
  double v = out[static_cast<size_t>(Evidence::kValue)];
  EXPECT_LT(v, 0.35);  // pulled toward 0.1, not the plain mean 0.5
}

TEST(AggregateDatasetTest, EmptyRowsGiveMaxDistances) {
  DistanceDistributions dists(1);
  dists.Finalize();
  DistanceVector out = AggregateDataset({}, dists);
  EXPECT_EQ(out, MaxDistances());
}

TEST(AggregateDatasetTest, DegenerateDistributionFallsBackGracefully) {
  // All candidates at the same distance: CCDF is 0 everywhere; the floor
  // keeps Eq. 1 well-defined and equal to that distance.
  DistanceDistributions dists(1);
  for (int i = 0; i < 4; ++i) dists.Observe(0, Evidence::kName, 0.5);
  dists.Finalize();
  DistanceVector d = MaxDistances();
  d[0] = 0.5;
  DistanceVector out = AggregateDataset({Row(0, 0, d)}, dists);
  EXPECT_NEAR(out[0], 0.5, 1e-9);
}

TEST(CombineDistancesTest, WeightedL2Formula) {
  // Eq. 3: sqrt( sum (w_t * dv_t)^2 / sum w_t ).
  EvidenceWeights w = EvidenceWeights::Uniform();
  DistanceVector dv = {1, 1, 1, 1, 1};
  double expected = std::sqrt(5 * (0.2 * 0.2) / 1.0);
  EXPECT_NEAR(CombineDistances(dv, w), expected, 1e-12);
}

TEST(CombineDistancesTest, ZeroVectorGivesZero) {
  EXPECT_DOUBLE_EQ(CombineDistances({0, 0, 0, 0, 0}, EvidenceWeights::Default()), 0.0);
}

TEST(CombineDistancesTest, MonotoneInEachComponent) {
  EvidenceWeights w = EvidenceWeights::Default();
  DistanceVector lo = {0.2, 0.2, 0.2, 0.2, 0.2};
  for (size_t t = 0; t < kNumEvidence; ++t) {
    DistanceVector hi = lo;
    hi[t] = 0.8;
    EXPECT_GT(CombineDistances(hi, w), CombineDistances(lo, w)) << t;
  }
}

TEST(CombineDistancesTest, ZeroWeightsIgnoreComponent) {
  EvidenceWeights w;
  w.w = {1, 0, 0, 0, 0};
  DistanceVector a = {0.3, 1.0, 1.0, 1.0, 1.0};
  DistanceVector b = {0.3, 0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(CombineDistances(a, w), CombineDistances(b, w));
}

TEST(CombineDistancesTest, AllZeroWeightsReturnOne) {
  EvidenceWeights w;
  w.w = {0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(CombineDistances({0.5, 0.5, 0.5, 0.5, 0.5}, w), 1.0);
}

TEST(EvidenceWeightsTest, DefaultsSumToOneAndFavourValue) {
  EvidenceWeights w = EvidenceWeights::Default();
  double sum = 0;
  for (double x : w.w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Experiment 1: value evidence is the strongest individual signal,
  // format the weakest.
  EXPECT_GT(w.w[static_cast<size_t>(Evidence::kValue)],
            w.w[static_cast<size_t>(Evidence::kFormat)]);
}

}  // namespace
}  // namespace d3l::core

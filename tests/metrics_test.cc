#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace d3l::eval {
namespace {

benchdata::GroundTruth MakeTruth() {
  benchdata::GroundTruth gt;
  gt.SetTableLabels("target", {1, 2, 3});
  gt.SetTableLabels("rel_a", {1, 9});
  gt.SetTableLabels("rel_b", {2, 3});
  gt.SetTableLabels("unrel_c", {7});
  gt.SetTableLabels("unrel_d", {8});
  return gt;
}

TEST(TopKEvalTest, CountsTpFpFn) {
  auto gt = MakeTruth();
  TopKEval e = EvaluateTopK({"rel_a", "unrel_c"}, "target", gt);
  EXPECT_EQ(e.tp, 1u);
  EXPECT_EQ(e.fp, 1u);
  EXPECT_EQ(e.fn, 1u);  // rel_b missed
  EXPECT_DOUBLE_EQ(e.precision, 0.5);
  EXPECT_DOUBLE_EQ(e.recall, 0.5);
}

TEST(TopKEvalTest, PerfectAnswer) {
  auto gt = MakeTruth();
  TopKEval e = EvaluateTopK({"rel_a", "rel_b"}, "target", gt);
  EXPECT_DOUBLE_EQ(e.precision, 1.0);
  EXPECT_DOUBLE_EQ(e.recall, 1.0);
}

TEST(TopKEvalTest, TargetItselfExcluded) {
  auto gt = MakeTruth();
  TopKEval e = EvaluateTopK({"target", "rel_a"}, "target", gt);
  EXPECT_EQ(e.tp, 1u);
  EXPECT_EQ(e.fp, 0u);
}

TEST(TopKEvalTest, EmptyAnswer) {
  auto gt = MakeTruth();
  TopKEval e = EvaluateTopK({}, "target", gt);
  EXPECT_EQ(e.tp, 0u);
  EXPECT_DOUBLE_EQ(e.precision, 0.0);
  EXPECT_DOUBLE_EQ(e.recall, 0.0);
  EXPECT_EQ(e.fn, 2u);
}

TEST(CoverageTest, Eq4CountsDistinctTargetColumns) {
  RankedTable s;
  s.name = "rel_a";
  s.alignments = {{0, 0}, {0, 1}, {2, 0}};  // target cols {0, 2}
  EXPECT_DOUBLE_EQ(CoverageOf(s, 4), 0.5);
  EXPECT_DOUBLE_EQ(CoverageOf(s, 0), 0.0);
  RankedTable empty;
  EXPECT_DOUBLE_EQ(CoverageOf(empty, 4), 0.0);
}

TEST(CoverageTest, Eq5UnionsJoinPathCoverage) {
  RankedTable start;
  start.name = "s";
  start.alignments = {{0, 0}};
  RankedTable join1;
  join1.name = "j1";
  join1.alignments = {{1, 0}};
  RankedTable join2;
  join2.name = "j2";
  join2.alignments = {{1, 1}, {2, 0}};
  EXPECT_DOUBLE_EQ(JoinCoverageOf(start, {join1, join2}, 4), 0.75);
  // Joins can only improve coverage.
  EXPECT_GE(JoinCoverageOf(start, {join1}, 4), CoverageOf(start, 4));
}

TEST(CoverageTest, Averages) {
  RankedTable a;
  a.alignments = {{0, 0}};
  RankedTable b;
  b.alignments = {{0, 0}, {1, 0}};
  EXPECT_DOUBLE_EQ(AverageCoverage({a, b}, 2), 0.75);
  EXPECT_DOUBLE_EQ(AverageCoverage({}, 2), 0.0);
  EXPECT_DOUBLE_EQ(AverageJoinCoverage({a}, {{b}}, 2), 1.0);
  // Missing join lists are treated as empty.
  EXPECT_DOUBLE_EQ(AverageJoinCoverage({a, b}, {{}}, 2), 0.75);
}

TEST(AttrPrecisionTest, PerSourcePrecisionAveraged) {
  auto gt = MakeTruth();
  RankedTable good;
  good.name = "rel_a";
  good.alignments = {{0, 0}};  // target col 0 (label 1) vs rel_a col 0 (label 1): TP
  RankedTable mixed;
  mixed.name = "rel_b";
  mixed.alignments = {{1, 0}, {0, 0}};  // (2==2): TP; (1 vs 2): FP
  double p = AverageAttributePrecision({good, mixed}, "target", gt);
  EXPECT_DOUBLE_EQ(p, (1.0 + 0.5) / 2);
}

TEST(AttrPrecisionTest, SourcesWithoutAlignmentsSkipped) {
  auto gt = MakeTruth();
  RankedTable good;
  good.name = "rel_a";
  good.alignments = {{0, 0}};
  RankedTable empty;
  empty.name = "unrel_c";
  EXPECT_DOUBLE_EQ(AverageAttributePrecision({good, empty}, "target", gt), 1.0);
  EXPECT_DOUBLE_EQ(AverageAttributePrecision({}, "target", gt), 0.0);
}

TEST(AttrPrecisionTest, JoinGroupsCountTpIfAnyMemberCorrect) {
  auto gt = MakeTruth();
  RankedTable start;
  start.name = "rel_a";
  start.alignments = {{0, 1}};  // label 1 vs 9: wrong
  RankedTable join;
  join.name = "rel_b";  // label of col 0 is 2
  join.alignments = {{0, 0}};  // target col 0 label 1 vs 2: wrong
  double p_wrong = AverageJoinAttributePrecision({start}, {{join}}, "target", gt);
  EXPECT_DOUBLE_EQ(p_wrong, 0.0);

  RankedTable join_right;
  join_right.name = "rel_a";
  join_right.alignments = {{0, 0}};  // label 1 vs 1: right -> group TP
  double p_right =
      AverageJoinAttributePrecision({start}, {{join_right}}, "target", gt);
  EXPECT_DOUBLE_EQ(p_right, 1.0);
}

}  // namespace
}  // namespace d3l::eval

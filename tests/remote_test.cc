// The remote serving tier end to end: a RemoteBackend scatter-gathering
// over N shard_server-style RpcServers must return rankings BYTE-IDENTICAL
// to the local ShardedEngine over the same manifest — including after a
// remote Reload() — and a killed server must surface Status::Unavailable
// after bounded retries without hanging DiscoveryService::Submit. Also
// covers BackendRef parsing, the OpenBackend factory, deployment-coherence
// rejection at Connect, and the EngineBackend source-identity fingerprint.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "obs/trace.h"
#include "rpc/server.h"
#include "serving/backend_ref.h"
#include "serving/discovery_service.h"
#include "serving/remote_backend.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "table/csv.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

void ExpectIdenticalResults(const core::SearchResult& expected,
                            const core::SearchResult& actual,
                            const std::string& context) {
  ASSERT_EQ(actual.ranked.size(), expected.ranked.size()) << context;
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    const core::TableMatch& e = expected.ranked[i];
    const core::TableMatch& a = actual.ranked[i];
    EXPECT_EQ(a.table_index, e.table_index) << context << " rank " << i;
    // Bitwise equality, not approximate: the remote scatter-gather must
    // reproduce the local engine's floating-point work exactly.
    EXPECT_EQ(a.distance, e.distance) << context << " rank " << i;
    EXPECT_EQ(a.evidence_distances, e.evidence_distances) << context << " rank " << i;
    ASSERT_EQ(a.pairs.size(), e.pairs.size()) << context << " rank " << i;
    for (size_t p = 0; p < e.pairs.size(); ++p) {
      EXPECT_EQ(a.pairs[p].target_column, e.pairs[p].target_column);
      EXPECT_EQ(a.pairs[p].attribute_id, e.pairs[p].attribute_id);
      EXPECT_EQ(a.pairs[p].d, e.pairs[p].d);
    }
  }
  ASSERT_EQ(actual.candidate_alignments.size(),
            expected.candidate_alignments.size())
      << context;
  for (const auto& [table, aligns] : expected.candidate_alignments) {
    auto it = actual.candidate_alignments.find(table);
    ASSERT_NE(it, actual.candidate_alignments.end()) << context;
    EXPECT_EQ(it->second, aligns) << context << " table " << table;
  }
}

class RemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("d3l_remote_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    servers_.clear();
    fs::remove_all(dir_);
  }

  std::string Base(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string BuildDeployment(const DataLake& lake, size_t num_shards,
                              const std::string& name) {
    serving::ShardingOptions options;
    options.num_shards = num_shards;
    auto report = serving::BuildShards(lake, options, Base(name));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report->manifest_path;
  }

  /// One RpcServer per assignment, each serving that subset of the
  /// manifest's shards, with the same reload hook shard_server installs
  /// (re-open the manifest in place, reusing the current generation).
  std::vector<std::string> StartServers(
      const std::string& manifest_path,
      const std::vector<std::vector<size_t>>& assignments) {
    std::vector<std::string> endpoints;
    for (const std::vector<size_t>& shards : assignments) {
      serving::ShardedEngineOptions engine_options;
      engine_options.serve_shards = shards;
      auto engine = serving::ShardedEngine::Open(manifest_path, engine_options);
      EXPECT_TRUE(engine.ok()) << engine.status().ToString();
      rpc::RpcServer::ReloadFn reload =
          [manifest_path, engine_options](const serving::ShardedEngine* current)
          -> Result<std::shared_ptr<const serving::ShardedEngine>> {
        D3L_ASSIGN_OR_RETURN(std::unique_ptr<serving::ShardedEngine> next,
                             serving::ShardedEngine::Open(
                                 manifest_path, engine_options, current));
        return std::shared_ptr<const serving::ShardedEngine>(std::move(next));
      };
      rpc::RpcServerOptions server_options;
      server_options.num_workers = 2;
      auto server = rpc::RpcServer::Start(
          std::shared_ptr<const serving::ShardedEngine>(std::move(*engine)),
          server_options, std::move(reload));
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      endpoints.push_back("127.0.0.1:" + std::to_string((*server)->port()));
      servers_.push_back(std::move(*server));
    }
    return endpoints;
  }

  /// Fast-failing client settings so deliberately-killed servers do not
  /// stretch the suite.
  static serving::RemoteBackendOptions FastFail() {
    serving::RemoteBackendOptions options;
    options.client.connect_timeout_seconds = 1.0;
    options.client.request_timeout_seconds = 5.0;
    options.client.max_attempts = 2;
    options.client.initial_backoff_seconds = 0.01;
    return options;
  }

  void CheckRemoteParity(const std::string& manifest_path,
                         const std::vector<std::vector<size_t>>& assignments,
                         const std::vector<Table>& targets, size_t k) {
    auto local = serving::ShardedEngine::Open(manifest_path);
    ASSERT_TRUE(local.ok()) << local.status().ToString();

    const std::vector<std::string> endpoints =
        StartServers(manifest_path, assignments);
    auto remote = serving::RemoteBackend::Connect(endpoints, FastFail());
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();

    // The remote deployment reports the SAME identity as the local engine
    // over the manifest — which is what keeps result caches portable.
    const serving::BackendInfo local_info = (*local)->Info();
    const serving::BackendInfo remote_info = (*remote)->Info();
    EXPECT_EQ(remote_info.kind, serving::BackendKind::kRemote);
    EXPECT_EQ(remote_info.num_tables, local_info.num_tables);
    EXPECT_EQ(remote_info.num_attributes, local_info.num_attributes);
    EXPECT_EQ(remote_info.num_shards, local_info.num_shards);
    EXPECT_EQ(remote_info.options_fingerprint, local_info.options_fingerprint);
    EXPECT_EQ(remote_info.index_fingerprint, local_info.index_fingerprint);
    for (uint32_t t = 0; t < local_info.num_tables; ++t) {
      EXPECT_EQ((*remote)->table_name(t), (*local)->table_name(t));
    }

    for (const Table& target : targets) {
      auto expected = (*local)->Search(target, k);
      auto actual = (*remote)->Search(target, k);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ExpectIdenticalResults(*expected, *actual,
                             "servers=" + std::to_string(assignments.size()) +
                                 " target=" + target.name());
    }
  }

  fs::path dir_;
  std::vector<std::unique_ptr<rpc::RpcServer>> servers_;
};

// --------------------------------------------------------------- exactness

TEST_F(RemoteTest, TwoServersMatchLocalShardedByteForByte) {
  DataLake lake = testutil::FigureLake(4);
  const std::string manifest = BuildDeployment(lake, 2, "two");
  CheckRemoteParity(manifest, {{0}, {1}},
                    {testutil::FigureTarget(), lake.table(1), lake.table(5)},
                    10);
}

TEST_F(RemoteTest, SingleFullServerMatchesViaDirectSearch) {
  DataLake lake = testutil::FigureLake(3);
  const std::string manifest = BuildDeployment(lake, 2, "solo");
  // One server serving every shard takes the SRCH fast path.
  CheckRemoteParity(manifest, {{0, 1}},
                    {testutil::FigureTarget(), lake.table(2)}, 8);
}

TEST_F(RemoteTest, UnevenShardAssignmentStillExact) {
  DataLake lake = testutil::FigureLake(6);
  const std::string manifest = BuildDeployment(lake, 3, "uneven");
  CheckRemoteParity(manifest, {{0, 2}, {1}},
                    {testutil::FigureTarget(), lake.table(4)}, 12);
}

TEST_F(RemoteTest, RemoteProfileMatchesLocalProfileBytes) {
  DataLake lake = testutil::FigureLake(2);
  const std::string manifest = BuildDeployment(lake, 2, "prof");
  auto local = serving::ShardedEngine::Open(manifest);
  ASSERT_TRUE(local.ok());
  const std::vector<std::string> endpoints = StartServers(manifest, {{0}, {1}});
  auto remote = serving::RemoteBackend::Connect(endpoints, FastFail());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  const Table target = testutil::FigureTarget();
  auto local_qt = (*local)->Profile(target);
  auto remote_qt = (*remote)->Profile(target);
  ASSERT_TRUE(local_qt.ok());
  ASSERT_TRUE(remote_qt.ok()) << remote_qt.status().ToString();
  // Canonical bytes equality = indistinguishable to every query phase and
  // to result-cache keys.
  EXPECT_EQ(core::CanonicalTargetBytes(*remote_qt),
            core::CanonicalTargetBytes(*local_qt));
}

TEST_F(RemoteTest, ReloadPicksUpARebuiltDeploymentExactly) {
  DataLake lake = testutil::FigureLake(2);
  const std::string manifest = BuildDeployment(lake, 2, "reload");
  const std::vector<std::string> endpoints = StartServers(manifest, {{0}, {1}});
  auto remote = serving::RemoteBackend::Connect(endpoints, FastFail());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  const size_t tables_before = (*remote)->Info().num_tables;
  const uint64_t fingerprint_before = (*remote)->Info().index_fingerprint;

  // Rebuild the deployment in place with a larger lake, then ask the
  // remote tier to reload: every server swaps generations over RELD and
  // the coordinator re-stitches the new numbering.
  DataLake bigger = testutil::FigureLake(5);
  BuildDeployment(bigger, 2, "reload");
  ASSERT_TRUE((*remote)->Reload().ok());

  const serving::BackendInfo after = (*remote)->Info();
  EXPECT_EQ(after.num_tables, bigger.size());
  EXPECT_GT(after.num_tables, tables_before);
  EXPECT_NE(after.index_fingerprint, fingerprint_before);

  // Post-reload answers must be byte-identical to a FRESH local engine
  // over the rebuilt manifest.
  auto local = serving::ShardedEngine::Open(manifest);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(after.index_fingerprint, (*local)->Info().index_fingerprint);
  for (const Table& target : {testutil::FigureTarget(), bigger.table(6)}) {
    auto expected = (*local)->Search(target, 10);
    auto actual = (*remote)->Search(target, 10);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    ExpectIdenticalResults(*expected, *actual,
                           "post-reload target=" + target.name());
  }
}

// ----------------------------------------------------------------- tracing

/// Flattens the span tree into slash-joined root-to-span paths, e.g.
/// "execute/search/rpc:DCNT 127.0.0.1:7001/serve:DCNT".
void CollectSpanPaths(const obs::Span& span, const std::string& prefix,
                      std::vector<std::string>* paths) {
  const std::string path = prefix.empty() ? span.name : prefix + "/" + span.name;
  paths->push_back(path);
  for (const obs::Span& child : span.children) {
    CollectSpanPaths(child, path, paths);
  }
}

TEST_F(RemoteTest, QueryAgainstTwoServersYieldsOneStitchedTrace) {
  DataLake lake = testutil::FigureLake(4);
  const std::string manifest = BuildDeployment(lake, 2, "trace");
  const std::vector<std::string> endpoints = StartServers(manifest, {{0}, {1}});
  auto remote = serving::RemoteBackend::Connect(endpoints, FastFail());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  serving::DiscoveryService service(remote->get());
  const Table target = testutil::FigureTarget();
  serving::QueryResponse response =
      service.Submit({&target, 5, std::nullopt, false}).get();
  ASSERT_TRUE(response.result.ok()) << response.result.status().ToString();

  // One trace for the whole cross-process query: the client's phase spans
  // with each server's subtree stitched under the RPC that fetched it.
  ASSERT_NE(response.stats.trace, nullptr);
  const obs::Trace& trace = *response.stats.trace;
  EXPECT_NE(trace.trace_id, 0u);
  std::vector<std::string> paths;
  for (const obs::Span& root : trace.roots) CollectSpanPaths(root, "", &paths);
  // Counts the spans whose path matches `needle` ending in the FINAL
  // segment — descendants of a match extend the path with '/' and are not
  // re-counted.
  const auto count_with = [&paths](const std::string& needle) {
    size_t n = 0;
    for (const std::string& p : paths) {
      const size_t at = p.rfind(needle);
      if (at != std::string::npos &&
          p.find('/', at + needle.size()) == std::string::npos) {
        ++n;
      }
    }
    return n;
  };

  // Client-side phases (queue is a retrospective root, execute wraps the
  // pipeline).
  EXPECT_EQ(count_with("queue"), 1u) << FormatTrace(trace);
  EXPECT_EQ(count_with("execute/profile"), 1u) << FormatTrace(trace);
  EXPECT_GE(count_with("execute/search"), 1u) << FormatTrace(trace);
  // Server-side handling spans: each of the two servers answers one DCNT
  // and one SCOR during the scatter-gather, under the client span of the
  // RPC that carried it.
  EXPECT_EQ(count_with("search/rpc:DCNT"), 2u) << FormatTrace(trace);
  EXPECT_EQ(count_with("serve:DCNT"), 2u) << FormatTrace(trace);
  EXPECT_EQ(count_with("serve:SCOR"), 2u) << FormatTrace(trace);
  // ...including the servers' own engine phases, proving the subtree came
  // from the server process, not the client's bookkeeping.
  EXPECT_EQ(count_with("serve:DCNT/engine:depth_counts"), 2u)
      << FormatTrace(trace);
  EXPECT_EQ(count_with("serve:SCOR/engine:score_at_stops"), 2u)
      << FormatTrace(trace);

  // Tracing off → no trace is built or shipped.
  serving::DiscoveryServiceOptions quiet;
  quiet.trace_queries = false;
  serving::DiscoveryService untraced(remote->get(), quiet);
  serving::QueryResponse quiet_response =
      untraced.Submit({&target, 5, std::nullopt, true}).get();
  ASSERT_TRUE(quiet_response.result.ok())
      << quiet_response.result.status().ToString();
  EXPECT_EQ(quiet_response.stats.trace, nullptr);
}

// ------------------------------------------------------------- degradation

TEST_F(RemoteTest, KilledServerSurfacesUnavailableWithoutHangingSubmit) {
  DataLake lake = testutil::FigureLake(2);
  const std::string manifest = BuildDeployment(lake, 2, "killed");
  const std::vector<std::string> endpoints = StartServers(manifest, {{0}, {1}});
  auto remote = serving::RemoteBackend::Connect(endpoints, FastFail());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // Kill one member of the deployment AFTER connect.
  servers_[1]->Stop();

  const Table target = testutil::FigureTarget();
  auto direct = (*remote)->Search(target, 5);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsUnavailable()) << direct.status().ToString();

  // Through the async front-end: the future must RESOLVE with the error,
  // never hang — the degradation half of the tentpole contract.
  serving::DiscoveryService service(remote->get());
  std::future<serving::QueryResponse> pending =
      service.Submit({&target, 5, std::nullopt, false});
  ASSERT_EQ(pending.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "Submit hung on an unreachable shard server";
  serving::QueryResponse response = pending.get();
  ASSERT_FALSE(response.result.ok());
  EXPECT_TRUE(response.result.status().IsUnavailable())
      << response.result.status().ToString();
}

TEST_F(RemoteTest, ConnectToDeadEndpointIsUnavailable) {
  // Bind-then-close leaves a port that refuses connections.
  auto connect = serving::RemoteBackend::Connect({"127.0.0.1:1"}, FastFail());
  ASSERT_FALSE(connect.ok());
  EXPECT_TRUE(connect.status().IsUnavailable()) << connect.status().ToString();
}

// ---------------------------------------------------- deployment coherence

TEST_F(RemoteTest, ConnectRejectsMixedDeployments) {
  DataLake lake_a = testutil::FigureLake(2);
  DataLake lake_b = testutil::FigureLake(5);
  const std::string manifest_a = BuildDeployment(lake_a, 2, "mix_a");
  const std::string manifest_b = BuildDeployment(lake_b, 2, "mix_b");
  std::vector<std::string> endpoints = StartServers(manifest_a, {{0}});
  for (const std::string& e : StartServers(manifest_b, {{1}})) {
    endpoints.push_back(e);
  }
  auto connect = serving::RemoteBackend::Connect(endpoints, FastFail());
  ASSERT_FALSE(connect.ok());
  EXPECT_TRUE(connect.status().IsInvalidArgument())
      << connect.status().ToString();
}

TEST_F(RemoteTest, ConnectRejectsOverlappingAndGappedPartitions) {
  DataLake lake = testutil::FigureLake(2);
  const std::string manifest = BuildDeployment(lake, 2, "partition");
  // Overlap: both servers serve shard 0.
  {
    const std::vector<std::string> endpoints =
        StartServers(manifest, {{0}, {0, 1}});
    auto connect = serving::RemoteBackend::Connect(endpoints, FastFail());
    ASSERT_FALSE(connect.ok());
    EXPECT_TRUE(connect.status().IsInvalidArgument());
    servers_.clear();
  }
  // Gap: shard 1 is served by nobody.
  {
    const std::vector<std::string> endpoints = StartServers(manifest, {{0}});
    auto connect = serving::RemoteBackend::Connect(endpoints, FastFail());
    ASSERT_FALSE(connect.ok());
    EXPECT_TRUE(connect.status().IsInvalidArgument());
  }
}

// --------------------------------------------------- BackendRef and factory

TEST(BackendRefTest, ParsesExplicitPrefixes) {
  auto snapshot = serving::BackendRef::Parse("snapshot:/tmp/lake.d3l");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->kind, serving::BackendRef::Kind::kSnapshot);
  EXPECT_EQ(snapshot->path, "/tmp/lake.d3l");
  EXPECT_EQ(snapshot->ToString(), "snapshot:/tmp/lake.d3l");

  auto manifest = serving::BackendRef::Parse("manifest:deploy.manifest");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->kind, serving::BackendRef::Kind::kManifest);
  EXPECT_EQ(manifest->ToString(), "manifest:deploy.manifest");

  auto remote = serving::BackendRef::Parse("tcp:10.0.0.1:7001,10.0.0.2:7002");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->kind, serving::BackendRef::Kind::kRemote);
  ASSERT_EQ(remote->endpoints.size(), 2u);
  EXPECT_EQ(remote->endpoints[0], "10.0.0.1:7001");
  EXPECT_EQ(remote->endpoints[1], "10.0.0.2:7002");
  EXPECT_EQ(remote->ToString(), "tcp:10.0.0.1:7001,10.0.0.2:7002");
}

TEST(BackendRefTest, RejectsMalformedSpecs) {
  EXPECT_TRUE(serving::BackendRef::Parse("").status().IsInvalidArgument());
  EXPECT_TRUE(
      serving::BackendRef::Parse("snapshot:").status().IsInvalidArgument());
  EXPECT_TRUE(
      serving::BackendRef::Parse("manifest:").status().IsInvalidArgument());
  EXPECT_TRUE(serving::BackendRef::Parse("tcp:").status().IsInvalidArgument());
  EXPECT_TRUE(
      serving::BackendRef::Parse("tcp:nohost").status().IsInvalidArgument());
  EXPECT_TRUE(serving::BackendRef::Parse("tcp:host:1,:2")
                  .status()
                  .IsInvalidArgument());
  // A bare path that does not exist cannot be sniffed.
  EXPECT_FALSE(serving::BackendRef::Parse("/does/not/exist.d3l").ok());
}

TEST_F(RemoteTest, BarePathsAreSniffedByMagic) {
  DataLake lake = testutil::FigureLake(1);
  core::D3LEngine engine;
  ASSERT_TRUE(engine.IndexLake(lake).ok());
  const std::string snapshot_path = Base("sniff.d3l");
  ASSERT_TRUE(engine.SaveSnapshot(snapshot_path).ok());
  const std::string manifest_path = BuildDeployment(lake, 2, "sniff");

  auto snapshot = serving::BackendRef::Parse(snapshot_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->kind, serving::BackendRef::Kind::kSnapshot);

  auto manifest = serving::BackendRef::Parse(manifest_path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->kind, serving::BackendRef::Kind::kManifest);

  // A real file of the wrong format is rejected with a clear error.
  const std::string csv_path = Base("not_a_container.csv");
  ASSERT_TRUE(WriteCsvFile(testutil::FigureS1(), csv_path).ok());
  EXPECT_FALSE(serving::BackendRef::Parse(csv_path).ok());
}

TEST_F(RemoteTest, OpenBackendOpensAllThreeKinds) {
  DataLake lake = testutil::FigureLake(2);
  core::D3LEngine engine;
  ASSERT_TRUE(engine.IndexLake(lake).ok());
  const std::string snapshot_path = Base("factory.d3l");
  ASSERT_TRUE(engine.SaveSnapshot(snapshot_path).ok());
  const std::string manifest_path = BuildDeployment(lake, 2, "factory");

  auto from_snapshot = serving::OpenBackend("snapshot:" + snapshot_path);
  ASSERT_TRUE(from_snapshot.ok()) << from_snapshot.status().ToString();
  EXPECT_EQ((*from_snapshot)->Info().kind, serving::BackendKind::kEngine);

  auto from_manifest = serving::OpenBackend(manifest_path);  // sniffed
  ASSERT_TRUE(from_manifest.ok()) << from_manifest.status().ToString();
  EXPECT_EQ((*from_manifest)->Info().kind, serving::BackendKind::kSharded);

  const std::vector<std::string> endpoints =
      StartServers(manifest_path, {{0, 1}});
  serving::OpenBackendOptions options;
  options.remote = FastFail();
  auto from_tcp = serving::OpenBackend("tcp:" + endpoints[0], options);
  ASSERT_TRUE(from_tcp.ok()) << from_tcp.status().ToString();
  EXPECT_EQ((*from_tcp)->Info().kind, serving::BackendKind::kRemote);

  // All three answer the same query identically (the API-redesign point:
  // one factory, one interface, interchangeable deployments).
  const Table target = testutil::FigureTarget();
  auto a = (*from_snapshot)->Search(target, 5);
  auto b = (*from_manifest)->Search(target, 5);
  auto c = (*from_tcp)->Search(target, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  ExpectIdenticalResults(*a, *b, "snapshot vs manifest");
  ExpectIdenticalResults(*a, *c, "snapshot vs remote");
}

// ------------------------------------------- EngineBackend fingerprint fix

TEST_F(RemoteTest, EngineBackendFingerprintTracksSourceIdentity) {
  // Two directories whose lakes have IDENTICAL schemas but different cell
  // content — before the source-identity fix these collided, so a service
  // swapping one for the other kept serving stale cached results.
  const fs::path dir_a = dir_ / "lake_a";
  const fs::path dir_b = dir_ / "lake_b";
  fs::create_directories(dir_a);
  fs::create_directories(dir_b);
  Table t1 = testutil::FigureS1();
  ASSERT_TRUE(WriteCsvFile(t1, (dir_a / "t.csv").string()).ok());
  Table t2 = testutil::FigureS1();
  t2.column(0).Append("Extra Practice");
  t2.column(1).Append("1 New St");
  t2.column(2).Append("Leeds");
  t2.column(3).Append("LS1 1AA");
  t2.column(4).Append("500");
  ASSERT_TRUE(WriteCsvFile(t2, (dir_b / "t.csv").string()).ok());

  DataLake lake_a, lake_b, lake_a2;
  ASSERT_TRUE(lake_a.LoadDirectory(dir_a.string()).ok());
  ASSERT_TRUE(lake_b.LoadDirectory(dir_b.string()).ok());
  ASSERT_TRUE(lake_a2.LoadDirectory(dir_a.string()).ok());

  core::D3LEngine engine_a, engine_b, engine_a2;
  ASSERT_TRUE(engine_a.IndexLake(lake_a).ok());
  ASSERT_TRUE(engine_b.IndexLake(lake_b).ok());
  ASSERT_TRUE(engine_a2.IndexLake(lake_a2).ok());

  const uint64_t fp_a = serving::EngineBackend(&engine_a, &lake_a)
                            .Info().index_fingerprint;
  const uint64_t fp_b = serving::EngineBackend(&engine_b, &lake_b)
                            .Info().index_fingerprint;
  const uint64_t fp_a2 = serving::EngineBackend(&engine_a2, &lake_a2)
                             .Info().index_fingerprint;
  EXPECT_NE(fp_a, fp_b) << "different lake content must not share a "
                           "cache identity";
  EXPECT_EQ(fp_a, fp_a2) << "the same files must reproduce the same identity";
}

}  // namespace
}  // namespace d3l

#include "text/token_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace d3l {
namespace {

TEST(TokenHistogramTest, CountsOccurrences) {
  TokenHistogram h;
  h.Insert({"street", "portland"});
  h.Insert({"street", "oxford"});
  h.Insert({"street", "mirabel"});
  EXPECT_EQ(h.CountOf("street"), 3u);
  EXPECT_EQ(h.CountOf("oxford"), 1u);
  EXPECT_EQ(h.CountOf("absent"), 0u);
  EXPECT_EQ(h.distinct_tokens(), 4u);
  EXPECT_EQ(h.total_occurrences(), 6u);
}

TEST(TokenHistogramTest, FrequentInfrequentSplit) {
  TokenHistogram h;
  // "street" appears 4x; the others once: median count is 1.
  for (int i = 0; i < 4; ++i) h.InsertOne("street");
  h.InsertOne("portland");
  h.InsertOne("oxford");
  h.InsertOne("mirabel");

  auto infreq = h.Infrequent();
  auto freq = h.Frequent();
  EXPECT_EQ(freq.size(), 1u);
  EXPECT_EQ(freq[0], "street");
  EXPECT_EQ(infreq.size(), 3u);
  EXPECT_EQ(std::count(infreq.begin(), infreq.end(), "street"), 0);
}

TEST(TokenHistogramTest, PartitionIsComplete) {
  TokenHistogram h;
  for (int i = 0; i < 10; ++i) h.InsertOne("common");
  for (int i = 0; i < 5; ++i) h.InsertOne("medium");
  h.InsertOne("rare1");
  h.InsertOne("rare2");
  auto infreq = h.Infrequent();
  auto freq = h.Frequent();
  EXPECT_EQ(infreq.size() + freq.size(), h.distinct_tokens());
}

TEST(TokenHistogramTest, EmptyHistogram) {
  TokenHistogram h;
  EXPECT_TRUE(h.Infrequent().empty());
  EXPECT_TRUE(h.Frequent().empty());
  EXPECT_EQ(h.distinct_tokens(), 0u);
}

TEST(TokenHistogramTest, AllEqualCountsAreInfrequent) {
  TokenHistogram h;
  h.InsertOne("a");
  h.InsertOne("b");
  h.InsertOne("c");
  // Median count = 1; all tokens are <= median -> infrequent; none frequent.
  EXPECT_EQ(h.Infrequent().size(), 3u);
  EXPECT_TRUE(h.Frequent().empty());
}

}  // namespace
}  // namespace d3l

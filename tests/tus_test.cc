#include "baselines/tus.h"

#include <gtest/gtest.h>

#include "benchdata/domains.h"
#include "tests/test_util.h"

namespace d3l::baselines {
namespace {

class TusTest : public ::testing::Test {
 protected:
  TusTest()
      : kb_(benchdata::DomainRegistry::Instance().BuildKbVocabulary()),
        engine_(TusOptions{}, &kb_, &wem_) {}

  YagoKb kb_;
  SubwordHashModel wem_;
  TusEngine engine_;
};

TEST_F(TusTest, SearchBeforeIndexFails) {
  EXPECT_FALSE(engine_.Search(testutil::FigureTarget(), 3).ok());
}

TEST_F(TusTest, RanksValueOverlappingTablesFirst) {
  DataLake lake = testutil::FigureLake(5);
  ASSERT_TRUE(engine_.IndexLake(lake).ok());
  auto res = engine_.Search(testutil::FigureTarget(), 3);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  // The top hit must be one of the GP tables (heavy value overlap).
  std::string top = lake.table(res->ranked[0].table_index).name();
  EXPECT_TRUE(top.find("gp") != std::string::npos || top.find("local") != std::string::npos)
      << top;
  // Scores descend.
  for (size_t i = 1; i < res->ranked.size(); ++i) {
    EXPECT_GE(res->ranked[i - 1].score, res->ranked[i].score);
  }
}

TEST_F(TusTest, NumericColumnsIgnored) {
  DataLake lake;
  // A table whose only content is numeric must be invisible to TUS.
  lake.AddTable(testutil::MakeTable("nums", {"Payment", "Count"},
                                    {{"100", "1"}, {"200", "2"}, {"300", "3"}}))
      .CheckOK();
  ASSERT_TRUE(engine_.IndexLake(lake).ok());
  EXPECT_EQ(engine_.build_stats().num_attributes, 0u);
}

TEST_F(TusTest, KbLookupsHappenDuringIndexing) {
  DataLake lake = testutil::FigureLake(2);
  uint64_t before = kb_.lookup_count();
  ASSERT_TRUE(engine_.IndexLake(lake).ok());
  // One lookup per token occurrence: far more than the attribute count.
  EXPECT_GT(kb_.lookup_count() - before, 100u);
}

TEST_F(TusTest, AlignmentsReported) {
  DataLake lake = testutil::FigureLake(2);
  ASSERT_TRUE(engine_.IndexLake(lake).ok());
  auto res = engine_.Search(testutil::FigureTarget(), 2);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_FALSE(res->ranked[0].alignments.empty());
  for (const auto& a : res->ranked[0].alignments) {
    EXPECT_LT(a.target_column, testutil::FigureTarget().num_columns());
    EXPECT_GT(a.score, 0.0);
    EXPECT_LE(a.score, 1.0);
  }
  EXPECT_FALSE(res->candidate_alignments.empty());
}

TEST_F(TusTest, SemanticEvidenceLinksDifferentValueSets) {
  // Two city columns with disjoint city names: token overlap is zero, but
  // the KB maps both into the "city" class, so TUS still finds them.
  DataLake lake;
  lake.AddTable(testutil::MakeTable(
                    "cities_a", {"place"},
                    {{"Manchester"}, {"Leeds"}, {"Sheffield"}, {"Bradford"}}))
      .CheckOK();
  ASSERT_TRUE(engine_.IndexLake(lake).ok());
  Table target = testutil::MakeTable(
      "cities_b", {"town"}, {{"Bristol"}, {"Cardiff"}, {"Swansea"}, {"Exeter"}});
  auto res = engine_.Search(target, 1);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_GT(res->ranked[0].score, 0.2);
}

TEST_F(TusTest, MemoryAndStatsPopulated) {
  DataLake lake = testutil::FigureLake(2);
  ASSERT_TRUE(engine_.IndexLake(lake).ok());
  EXPECT_GT(engine_.build_stats().num_attributes, 0u);
  EXPECT_GT(engine_.build_stats().index_bytes, 0u);
  EXPECT_GT(engine_.MemoryUsage(), 0u);
  EXPECT_TRUE(engine_.IndexLake(lake).IsInvalidArgument());
}

}  // namespace
}  // namespace d3l::baselines

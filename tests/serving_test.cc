// The sharded serving subsystem: thread pool, shard planning, manifest
// round trips and damage handling, and — the core property — exact
// scatter-gather: a ShardedEngine over N shards returns rankings
// byte-identical to a single unsharded engine over the same lake,
// including distance ties, for N in {1, 2, 3, 7} on randomized lakes.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "benchdata/synthetic_gen.h"
#include "core/query.h"
#include "eval/experiment.h"
#include "io/binary_io.h"
#include "serving/manifest.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "serving/thread_pool.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("d3l_serving_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Base(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// A lake with guaranteed exact distance ties: byte-identical tables under
// different names land in different shards, so only a deterministic
// tie-break (global table id) keeps the sharded ranking byte-identical.
DataLake MakeTieLake() {
  DataLake lake;
  lake.AddTable(testutil::FigureS1()).CheckOK();
  lake.AddTable(testutil::FigureS2()).CheckOK();
  lake.AddTable(testutil::FigureS3()).CheckOK();
  for (int salt = 0; salt < 2; ++salt) {
    lake.AddTable(testutil::FillerColors(salt)).CheckOK();
    lake.AddTable(testutil::FillerInventory(salt)).CheckOK();
    lake.AddTable(testutil::FillerWeather(salt)).CheckOK();
  }
  Table dup1 = testutil::FigureS2();
  dup1.set_name("zz_dup_a");
  lake.AddTable(std::move(dup1)).CheckOK();
  Table dup2 = testutil::FigureS2();
  dup2.set_name("zz_dup_b");
  lake.AddTable(std::move(dup2)).CheckOK();
  return lake;
}

DataLake MakeSyntheticLake(uint64_t seed) {
  benchdata::SyntheticOptions opts;
  opts.num_base_tables = 5;
  opts.derived_per_base = 3;
  opts.base_rows_min = 40;
  opts.base_rows_max = 80;
  opts.seed = seed;
  auto gen = benchdata::GenerateSynthetic(opts);
  gen.status().CheckOK();
  return std::move(gen->lake);
}

void ExpectIdenticalResults(const core::SearchResult& expected,
                            const core::SearchResult& actual,
                            const std::string& context) {
  ASSERT_EQ(actual.ranked.size(), expected.ranked.size()) << context;
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    const core::TableMatch& e = expected.ranked[i];
    const core::TableMatch& a = actual.ranked[i];
    EXPECT_EQ(a.table_index, e.table_index) << context << " rank " << i;
    // Bitwise equality, not approximate: the scatter-gather pipeline must
    // reproduce the single engine's floating-point work exactly.
    EXPECT_EQ(a.distance, e.distance) << context << " rank " << i;
    EXPECT_EQ(a.evidence_distances, e.evidence_distances) << context << " rank " << i;
    ASSERT_EQ(a.pairs.size(), e.pairs.size()) << context << " rank " << i;
    for (size_t p = 0; p < e.pairs.size(); ++p) {
      EXPECT_EQ(a.pairs[p].target_column, e.pairs[p].target_column);
      EXPECT_EQ(a.pairs[p].attribute_id, e.pairs[p].attribute_id);
      EXPECT_EQ(a.pairs[p].d, e.pairs[p].d);
    }
  }
  // Candidate alignments (Algorithm 3's input) must agree as maps.
  ASSERT_EQ(actual.candidate_alignments.size(), expected.candidate_alignments.size())
      << context;
  for (const auto& [table, aligns] : expected.candidate_alignments) {
    auto it = actual.candidate_alignments.find(table);
    ASSERT_NE(it, actual.candidate_alignments.end()) << context;
    EXPECT_EQ(it->second, aligns) << context << " table " << table;
  }
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  for (size_t workers : {size_t{0}, size_t{1}, size_t{4}}) {
    serving::ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, BackToBackBatchesAndEmptyBatch) {
  serving::ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "empty batch must not run"; });
  std::atomic<size_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(10, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200u);
}

// -------------------------------------------------------------- planning

TEST(PlanShardsTest, RoundRobinAssignsByIndex) {
  DataLake lake = testutil::FigureLake(4);
  serving::ShardingOptions options;
  options.num_shards = 3;
  options.balance = serving::ShardingOptions::Balance::kRoundRobin;
  auto plan = serving::PlanShards(lake, options);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->size(), 3u);
  for (size_t s = 0; s < plan->size(); ++s) {
    for (uint32_t g : (*plan)[s]) EXPECT_EQ(g % 3, s);
  }
}

TEST(PlanShardsTest, SizeBalancedCoversAllTablesOnce) {
  DataLake lake = MakeTieLake();
  serving::ShardingOptions options;
  options.num_shards = 4;
  auto plan = serving::PlanShards(lake, options);
  ASSERT_TRUE(plan.ok());
  std::set<uint32_t> seen;
  for (const auto& shard : *plan) {
    EXPECT_FALSE(shard.empty());
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    for (uint32_t g : shard) EXPECT_TRUE(seen.insert(g).second);
  }
  EXPECT_EQ(seen.size(), lake.size());
}

TEST(PlanShardsTest, RejectsDegenerateShardCounts) {
  DataLake lake = testutil::FigureLake(0);
  serving::ShardingOptions options;
  options.num_shards = 0;
  EXPECT_TRUE(serving::PlanShards(lake, options).status().IsInvalidArgument());
  options.num_shards = lake.size() + 1;
  EXPECT_TRUE(serving::PlanShards(lake, options).status().IsInvalidArgument());
}

// ------------------------------------------------------------ exact merge

class ShardedParityTest : public ServingTest {
 protected:
  // Builds shards of `lake`, opens a ShardedEngine and asserts byte-equal
  // rankings against `unsharded` for every target.
  void CheckParity(const DataLake& lake, const core::D3LEngine& unsharded,
                   const std::vector<Table>& targets, size_t num_shards,
                   serving::ShardingOptions::Balance balance, size_t k) {
    serving::ShardingOptions options;
    options.num_shards = num_shards;
    options.balance = balance;
    const std::string base = Base("n" + std::to_string(num_shards));
    auto report = serving::BuildShards(lake, options, base);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    serving::ShardedEngineOptions open_options;
    open_options.num_threads = 3;
    auto sharded = serving::ShardedEngine::Open(report->manifest_path, open_options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ((*sharded)->num_shards(), num_shards);
    EXPECT_EQ((*sharded)->num_tables(), lake.size());

    for (const Table& target : targets) {
      auto expected = unsharded.Search(target, k);
      auto actual = (*sharded)->Search(target, k);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ExpectIdenticalResults(*expected, *actual,
                             "shards=" + std::to_string(num_shards) +
                                 " target=" + target.name());
    }
  }
};

TEST_F(ShardedParityTest, TieLakeMatchesUnshardedAtEveryShardCount) {
  DataLake lake = MakeTieLake();
  core::D3LEngine unsharded;
  ASSERT_TRUE(unsharded.IndexLake(lake).ok());

  std::vector<Table> targets = {testutil::FigureTarget(), lake.table(1),
                                lake.table(4)};
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    CheckParity(lake, unsharded, targets, n,
                serving::ShardingOptions::Balance::kSizeBalanced, 10);
  }
  // Round-robin spreads the duplicate tables differently; parity must hold
  // regardless of the partitioning policy.
  CheckParity(lake, unsharded, targets, 3,
              serving::ShardingOptions::Balance::kRoundRobin, 10);
}

TEST_F(ShardedParityTest, RandomizedLakesMatchUnsharded) {
  for (uint64_t seed : {uint64_t{7}, uint64_t{1234}}) {
    DataLake lake = MakeSyntheticLake(seed);
    core::D3LEngine unsharded;
    ASSERT_TRUE(unsharded.IndexLake(lake).ok());

    std::vector<Table> targets;
    for (uint32_t t : eval::SampleTargets(lake, 4, seed + 1)) {
      targets.push_back(lake.table(t));
    }
    for (size_t n : {size_t{2}, size_t{3}, size_t{7}}) {
      CheckParity(lake, unsharded, targets, n,
                  serving::ShardingOptions::Balance::kSizeBalanced, 15);
    }
  }
}

TEST_F(ShardedParityTest, DuplicateTablesTieBreakDeterministically) {
  DataLake lake = MakeTieLake();
  core::D3LEngine unsharded;
  ASSERT_TRUE(unsharded.IndexLake(lake).ok());
  // S2 and its two byte-identical copies must produce exact distance ties.
  auto res = unsharded.Search(testutil::FigureTarget(), lake.size());
  ASSERT_TRUE(res.ok());
  int s2_family = 0;
  double s2_distance = -1;
  for (const core::TableMatch& m : res->ranked) {
    const std::string& name = lake.table(m.table_index).name();
    if (name == "s2_gp_funding" || name == "zz_dup_a" || name == "zz_dup_b") {
      ++s2_family;
      if (s2_distance < 0) {
        s2_distance = m.distance;
      } else {
        EXPECT_EQ(m.distance, s2_distance) << name;
      }
    }
  }
  EXPECT_EQ(s2_family, 3);
}

TEST_F(ShardedParityTest, BatchedExecutionMatchesSequentialSearches) {
  DataLake lake = MakeSyntheticLake(99);
  serving::ShardingOptions options;
  options.num_shards = 3;
  auto report = serving::BuildShards(lake, options, Base("batch"));
  ASSERT_TRUE(report.ok());
  serving::ShardedEngineOptions open_options;
  open_options.num_threads = 4;
  auto sharded = serving::ShardedEngine::Open(report->manifest_path, open_options);
  ASSERT_TRUE(sharded.ok());

  std::vector<Table> targets;
  for (uint32_t t : eval::SampleTargets(lake, 5, 3)) targets.push_back(lake.table(t));
  Table empty("empty");

  serving::QueryBatch batch;
  for (const Table& t : targets) batch.targets.push_back(&t);
  batch.targets.push_back(&targets[0]);  // duplicate pointer: profiled once
  batch.targets.push_back(&empty);       // bad target fails only its own slot
  batch.k = 8;
  auto results = (*sharded)->Execute(batch);
  ASSERT_EQ(results.size(), targets.size() + 2);
  for (size_t i = 0; i < targets.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    auto single = (*sharded)->Search(targets[i], batch.k);
    ASSERT_TRUE(single.ok());
    ExpectIdenticalResults(*single, *results[i], "batch slot " + std::to_string(i));
  }
  ASSERT_TRUE(results[targets.size()].ok());
  ExpectIdenticalResults(*results[0], *results[targets.size()], "duplicate slot");
  EXPECT_TRUE(results.back().status().IsInvalidArgument());
}

// -------------------------------------------------------- manifest damage

class ShardDamageTest : public ServingTest {
 protected:
  std::string BuildSet(size_t num_shards = 3) {
    lake_ = MakeTieLake();
    serving::ShardingOptions options;
    options.num_shards = num_shards;
    auto report = serving::BuildShards(lake_, options, Base("victim"));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    report_ = *report;
    return report_.manifest_path;
  }

  DataLake lake_;
  serving::ShardBuildReport report_;
};

TEST_F(ShardDamageTest, MissingShardFileFailsCleanly) {
  std::string manifest = BuildSet();
  fs::remove(report_.shard_paths[1]);
  auto opened = serving::ShardedEngine::Open(manifest);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsNotFound()) << opened.status().ToString();
}

TEST_F(ShardDamageTest, CorruptShardFileFailsChecksum) {
  std::string manifest = BuildSet();
  // Flip one byte in the middle of shard 2's snapshot.
  std::fstream f(report_.shard_paths[2],
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  auto size = static_cast<std::streamoff>(f.tellg());
  f.seekp(size / 2);
  char c;
  f.seekg(size / 2);
  f.get(c);
  f.seekp(size / 2);
  f.put(static_cast<char>(c ^ 0x20));
  f.close();

  auto opened = serving::ShardedEngine::Open(manifest);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError());
  EXPECT_NE(opened.status().message().find("checksum"), std::string::npos)
      << opened.status().ToString();

  // With verification off, the per-section CRCs of the snapshot reader
  // still catch the damage at load time.
  serving::ShardedEngineOptions no_verify;
  no_verify.verify_checksums = false;
  EXPECT_FALSE(serving::ShardedEngine::Open(manifest, no_verify).ok());
}

TEST_F(ShardDamageTest, ShardCountMismatchFailsValidation) {
  std::string manifest_path = BuildSet();
  auto manifest = serving::ShardManifest::Load(manifest_path);
  ASSERT_TRUE(manifest.ok());
  // Drop a shard: its tables are no longer covered.
  serving::ShardManifest truncated = *manifest;
  truncated.shards.pop_back();
  EXPECT_TRUE(truncated.Validate().IsInvalidArgument());
  EXPECT_TRUE(truncated.Save(Base("truncated.manifest")).IsInvalidArgument());

  // Duplicate coverage is rejected too.
  serving::ShardManifest duplicated = *manifest;
  duplicated.shards[0].global_tables = duplicated.shards[1].global_tables;
  duplicated.shards[0].num_tables = duplicated.shards[1].num_tables;
  EXPECT_TRUE(duplicated.Validate().IsInvalidArgument());
}

TEST_F(ShardDamageTest, ShardContentsMustMatchManifestCounts) {
  std::string manifest_path = BuildSet();
  auto manifest = serving::ShardManifest::Load(manifest_path);
  ASSERT_TRUE(manifest.ok());
  // Point shard 0's entry at shard 1's file (both valid snapshots, but the
  // table sets disagree with the manifest's global mapping). Size/CRC are
  // patched to shard 1's so only the content check can catch it.
  serving::ShardManifest swapped = *manifest;
  swapped.shards[0].file = swapped.shards[1].file;
  swapped.shards[0].file_bytes = swapped.shards[1].file_bytes;
  swapped.shards[0].file_crc32 = swapped.shards[1].file_crc32;
  const std::string path = Base("swapped.manifest");
  ASSERT_TRUE(swapped.Save(path).ok());
  auto opened = serving::ShardedEngine::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError()) << opened.status().ToString();
}

TEST_F(ShardDamageTest, SwappedSameShapedShardFilesAreRejected) {
  // Four byte-identical tables (distinct names) round-robined into two
  // shards of identical shape: swapping the shard files leaves every
  // count and even the file checksums consistent with the (also swapped)
  // entries, so only the schema fingerprint can detect the mix-up.
  DataLake lake;
  for (int i = 0; i < 4; ++i) {
    Table t = testutil::FigureS2();
    t.set_name("clone_" + std::to_string(i));
    lake.AddTable(std::move(t)).CheckOK();
  }
  serving::ShardingOptions options;
  options.num_shards = 2;
  options.balance = serving::ShardingOptions::Balance::kRoundRobin;
  auto report = serving::BuildShards(lake, options, Base("same_shape"));
  ASSERT_TRUE(report.ok());

  auto manifest = serving::ShardManifest::Load(report->manifest_path);
  ASSERT_TRUE(manifest.ok());
  serving::ShardManifest swapped = *manifest;
  std::swap(swapped.shards[0].file, swapped.shards[1].file);
  std::swap(swapped.shards[0].file_bytes, swapped.shards[1].file_bytes);
  std::swap(swapped.shards[0].file_crc32, swapped.shards[1].file_crc32);
  const std::string path = Base("same_shape_swapped.manifest");
  ASSERT_TRUE(swapped.Save(path).ok());

  auto opened = serving::ShardedEngine::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("does not contain the tables"),
            std::string::npos)
      << opened.status().ToString();
}

TEST_F(ShardDamageTest, ForeignFileIsNotAManifest) {
  std::string snapshot = Base("plain.d3l");
  core::D3LEngine engine;
  DataLake lake = testutil::FigureLake(2);
  ASSERT_TRUE(engine.IndexLake(lake).ok());
  ASSERT_TRUE(engine.SaveSnapshot(snapshot).ok());
  auto opened = serving::ShardedEngine::Open(snapshot);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument());
}

// ----------------------------------------------------------- inspection

TEST_F(ServingTest, InspectFileListsSectionsAndDetectsDamage) {
  DataLake lake = testutil::FigureLake(2);
  core::D3LEngine engine;
  ASSERT_TRUE(engine.IndexLake(lake).ok());
  const std::string path = Base("inspect.d3l");
  ASSERT_TRUE(engine.SaveSnapshot(path).ok());

  auto info = io::InspectFile(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->magic, std::string(core::D3LEngine::kSnapshotMagic, 8));
  EXPECT_EQ(info->version, core::D3LEngine::kSnapshotVersion);
  ASSERT_EQ(info->sections.size(), 4u);
  EXPECT_EQ(io::SectionName(info->sections[0].id), "OPTS");
  EXPECT_EQ(io::SectionName(info->sections[2].id), "INDX");
  for (const io::SectionInfo& s : info->sections) EXPECT_TRUE(s.crc_ok);
  EXPECT_EQ(info->file_bytes, fs::file_size(path));

  // Snapshot metadata without loading indexes.
  auto snap = core::D3LEngine::ReadSnapshotInfo(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_tables, lake.size());
  EXPECT_EQ(snap->num_attributes, engine.indexes().num_attributes());

  // A bit flip inside a payload flips exactly that section's crc_ok.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);  // inside the OPTS payload
  f.put('\x7f');
  f.close();
  auto damaged = io::InspectFile(path);
  ASSERT_TRUE(damaged.ok());
  EXPECT_FALSE(damaged->sections[0].crc_ok);
  EXPECT_TRUE(damaged->sections[2].crc_ok);
}

}  // namespace
}  // namespace d3l

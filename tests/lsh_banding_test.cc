#include "lsh/lsh_banding.h"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "lsh/minhash.h"

namespace d3l {
namespace {

std::set<std::string> OverlappingSet(int shared, int total, int salt) {
  std::set<std::string> s;
  for (int i = 0; i < shared; ++i) s.insert("shared_" + std::to_string(i));
  for (int i = shared; i < total; ++i) {
    s.insert("salt" + std::to_string(salt) + "_" + std::to_string(i));
  }
  return s;
}

TEST(BandingMathTest, OptimalBandsRowsApproximateThreshold) {
  for (double tau : {0.4, 0.5, 0.7, 0.9}) {
    auto [b, r] = OptimalBandsRows(256, tau);
    EXPECT_LE(b * r, 256u);
    EXPECT_GE(b, 1u);
    double achieved = std::pow(1.0 / static_cast<double>(b),
                               1.0 / static_cast<double>(r));
    EXPECT_NEAR(achieved, tau, 0.08) << "tau=" << tau;
  }
}

TEST(BandingMathTest, CollisionProbabilityIsSCurve) {
  auto [b, r] = OptimalBandsRows(256, 0.7);
  double below = BandingCollisionProbability(0.4, b, r);
  double at = BandingCollisionProbability(0.7, b, r);
  double above = BandingCollisionProbability(0.9, b, r);
  EXPECT_LT(below, 0.25);
  EXPECT_GT(at, 0.3);
  EXPECT_GT(above, 0.95);
  EXPECT_LT(below, at);
  EXPECT_LT(at, above);
}

class BandedLshTest : public ::testing::Test {
 protected:
  BandedLshTest() : hasher_(256, 3) {}
  MinHasher hasher_;
};

TEST_F(BandedLshTest, HighSimilarityCollides) {
  BandedLsh index;
  auto query = OverlappingSet(60, 60, 0);
  auto near = OverlappingSet(57, 60, 1);  // jaccard ~ 0.9
  index.Insert(0, hasher_.Sign(near));
  auto hits = index.Query(hasher_.Sign(query));
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 0u), 1);
}

TEST_F(BandedLshTest, LowSimilarityRarelyCollides) {
  BandedLsh index;
  // jaccard ~ 10/(110) ~ 0.09 — far below tau=0.7.
  for (uint32_t i = 0; i < 50; ++i) {
    index.Insert(i, hasher_.Sign(OverlappingSet(10, 60, 100 + i)));
  }
  auto hits = index.Query(hasher_.Sign(OverlappingSet(60, 60, 0)));
  EXPECT_LE(hits.size(), 3u);
}

TEST_F(BandedLshTest, QueryDeduplicates) {
  BandedLsh index;
  auto sig = hasher_.Sign(OverlappingSet(40, 40, 0));
  index.Insert(7, sig);
  auto hits = index.Query(sig);
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 7u), 1);
}

TEST_F(BandedLshTest, SizeAndMemory) {
  BandedLsh index;
  EXPECT_EQ(index.size(), 0u);
  index.Insert(0, hasher_.Sign(OverlappingSet(20, 20, 0)));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_GT(index.MemoryUsage(), 0u);
}

// Property sweep: empirical collision rates bracket the threshold S-curve.
class BandedThresholdTest : public ::testing::TestWithParam<int> {};

TEST_P(BandedThresholdTest, CollisionRateTracksSimilarity) {
  int shared = GetParam();
  MinHasher hasher(256, 19);
  int collided = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    BandedLsh index;
    auto a = OverlappingSet(60, 60, 100 * t);
    std::set<std::string> b;
    int i = 0;
    for (const auto& e : a) {
      if (i++ >= shared) break;
      b.insert(e);
    }
    for (int j = 0; j < 60 - shared; ++j) {
      b.insert("b_" + std::to_string(t) + "_" + std::to_string(j));
    }
    index.Insert(0, hasher.Sign(b));
    auto hits = index.Query(hasher.Sign(a));
    if (!hits.empty()) ++collided;
  }
  double rate = static_cast<double>(collided) / trials;
  double jaccard = static_cast<double>(shared) / (120.0 - shared);
  if (jaccard >= 0.85) {
    EXPECT_GE(rate, 0.85) << "shared=" << shared;
  } else if (jaccard <= 0.3) {
    EXPECT_LE(rate, 0.35) << "shared=" << shared;
  }
}

INSTANTIATE_TEST_SUITE_P(SharedLevels, BandedThresholdTest,
                         ::testing::Values(25, 40, 56, 60));

TEST(BandedLshDeathTest, ShortSignatureAbortsLoudly) {
  // An ensemble whose options disagree with its hasher must die with a
  // diagnostic instead of reading past the signature (mirrors
  // LshForest::CheckSignatureSize; previously only a debug assert).
  BandedLshOptions options;
  options.signature_size = 64;
  BandedLsh index(options);
  MinHasher hasher(64, 11);
  Signature good = hasher.Sign(OverlappingSet(30, 60, 0));
  index.Insert(0, good);

  MinHasher short_hasher(16, 11);
  Signature short_sig = short_hasher.Sign(OverlappingSet(30, 60, 1));
  EXPECT_DEATH(index.Insert(1, short_sig), "BandedLsh: signature has");
  EXPECT_DEATH((void)index.Query(short_sig), "BandedLsh: signature has");
}

}  // namespace
}  // namespace d3l

#include "embedding/subword_model.h"

#include <gtest/gtest.h>

#include "embedding/vector_ops.h"

namespace d3l {
namespace {

TEST(VectorOpsTest, DotNormCosine) {
  Vec a = {1, 0, 0};
  Vec b = {0, 1, 0};
  Vec c = {2, 0, 0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 0);
  EXPECT_DOUBLE_EQ(Norm(c), 2);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance(a, c), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), 1.0);
}

TEST(VectorOpsTest, ZeroVectorCosineIsZeroSim) {
  Vec z = {0, 0};
  Vec a = {1, 1};
  EXPECT_DOUBLE_EQ(CosineSimilarity(z, a), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance(z, a), 1.0);
}

TEST(VectorOpsTest, CosineDistanceClampedForAntipodal) {
  Vec a = {1, 0};
  Vec b = {-1, 0};
  // 1 - (-1) = 2, clamped to 1.
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), 1.0);
}

TEST(VectorOpsTest, NormalizeAndMean) {
  Vec v = {3, 4};
  Normalize(&v);
  EXPECT_NEAR(Norm(v), 1.0, 1e-6);  // float components
  Vec m = MeanVector({{1, 1}, {3, 3}});
  EXPECT_FLOAT_EQ(m[0], 2);
  EXPECT_FLOAT_EQ(m[1], 2);
}

class SubwordModelTest : public ::testing::Test {
 protected:
  SubwordHashModel model_;
};

TEST_F(SubwordModelTest, Deterministic) {
  Vec a = model_.Embed("manchester");
  Vec b = model_.Embed("manchester");
  EXPECT_EQ(a, b);
  SubwordHashModel model2;
  EXPECT_EQ(model2.Embed("manchester"), a);
}

TEST_F(SubwordModelTest, UnitNorm) {
  EXPECT_NEAR(Norm(model_.Embed("salford")), 1.0, 1e-5);
  EXPECT_NEAR(Norm(model_.Embed("x")), 1.0, 1e-5);
}

TEST_F(SubwordModelTest, EmptyWordIsZeroVector) {
  EXPECT_DOUBLE_EQ(Norm(model_.Embed("")), 0.0);
}

TEST_F(SubwordModelTest, SharedSubwordsIncreaseSimilarity) {
  // The fastText property D3L relies on: orthographically close tokens are
  // close in cosine space, unrelated tokens are not.
  double typo = CosineSimilarity(model_.Embed("manchester"), model_.Embed("manchestr"));
  double inflection =
      CosineSimilarity(model_.Embed("payment"), model_.Embed("payments"));
  double unrelated = CosineSimilarity(model_.Embed("manchester"), model_.Embed("zq9"));
  EXPECT_GT(typo, 0.5);
  EXPECT_GT(inflection, 0.55);
  EXPECT_LT(unrelated, 0.35);
  EXPECT_GT(typo, unrelated + 0.25);
}

TEST_F(SubwordModelTest, DifferentSeedsGiveDifferentSpaces) {
  SubwordModelOptions opts;
  opts.seed = 0x1234;
  SubwordHashModel other(opts);
  Vec a = model_.Embed("manchester");
  Vec b = other.Embed("manchester");
  EXPECT_NE(a, b);
}

TEST_F(SubwordModelTest, EmbedAllAveragesTokens) {
  Vec all = model_.EmbedAll({"salford", "quays"});
  Vec manual(model_.dim(), 0.0f);
  AddInPlace(&manual, model_.Embed("salford"));
  AddInPlace(&manual, model_.Embed("quays"));
  for (float& x : manual) x /= 2;
  for (size_t i = 0; i < manual.size(); ++i) {
    EXPECT_NEAR(all[i], manual[i], 1e-6);
  }
  EXPECT_DOUBLE_EQ(Norm(model_.EmbedAll({})), 0.0);
}

TEST_F(SubwordModelTest, CachingEmbedderMatchesModel) {
  CachingEmbedder cache(&model_);
  Vec v1 = cache.Embed("bolton");
  Vec v2 = cache.Embed("bolton");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(cache.cache_size(), 1u);
  EXPECT_EQ(v1, model_.Embed("bolton"));
}

class SubwordDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SubwordDimTest, RespectsConfiguredDimension) {
  SubwordModelOptions opts;
  opts.dim = GetParam();
  SubwordHashModel m(opts);
  EXPECT_EQ(m.dim(), GetParam());
  EXPECT_EQ(m.Embed("word").size(), GetParam());
  EXPECT_NEAR(Norm(m.Embed("word")), 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, SubwordDimTest, ::testing::Values(8, 32, 64, 128));

}  // namespace
}  // namespace d3l

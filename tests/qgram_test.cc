#include "text/qgram.h"

#include <gtest/gtest.h>

namespace d3l {
namespace {

TEST(QGramTest, PaperExample) {
  // Example 2: get_qgrams("Address") = {addr, ddre, dres, ress}.
  auto grams = QGrams("Address", 4);
  std::set<std::string> expected = {"addr", "ddre", "dres", "ress"};
  EXPECT_EQ(grams, expected);
}

TEST(QGramTest, NormalizationStripsNonAlnum) {
  EXPECT_EQ(NormalizeName("Practice Name"), "practicename");
  EXPECT_EQ(NormalizeName("GP_code-2"), "gpcode2");
  EXPECT_EQ(NormalizeName("  "), "");
}

TEST(QGramTest, ShortNamesContributeThemselves) {
  auto grams = QGrams("GP", 4);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_TRUE(grams.count("gp"));
}

TEST(QGramTest, ExactLengthName) {
  auto grams = QGrams("City", 4);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_TRUE(grams.count("city"));
}

TEST(QGramTest, EmptyNameGivesEmptySet) {
  EXPECT_TRUE(QGrams("", 4).empty());
  EXPECT_TRUE(QGrams("!!!", 4).empty());
}

TEST(QGramTest, SimilarNamesShareGrams) {
  auto a = QGrams("Postcode", 4);
  auto b = QGrams("Post Code", 4);
  // Normalization makes these identical.
  EXPECT_EQ(a, b);
}

TEST(QGramTest, DifferentQ) {
  auto grams = QGrams("abcde", 2);
  std::set<std::string> expected = {"ab", "bc", "cd", "de"};
  EXPECT_EQ(grams, expected);
}

class QGramSimilarityTest : public ::testing::TestWithParam<
                                std::tuple<std::string, std::string, bool>> {};

TEST_P(QGramSimilarityTest, RelatedNamesOverlapMoreThanUnrelated) {
  auto [a, b, should_overlap] = GetParam();
  auto ga = QGrams(a, 4);
  auto gb = QGrams(b, 4);
  size_t inter = 0;
  for (const auto& g : ga) inter += gb.count(g);
  if (should_overlap) {
    EXPECT_GT(inter, 0u) << a << " vs " << b;
  } else {
    EXPECT_EQ(inter, 0u) << a << " vs " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, QGramSimilarityTest,
    ::testing::Values(
        std::make_tuple("Practice Name", "Practice", true),
        std::make_tuple("Postcode", "Post Code", true),
        std::make_tuple("Opening hours", "Hours", true),
        std::make_tuple("City", "Payment", false),
        std::make_tuple("Telephone", "Phone Number", true),
        std::make_tuple("Age", "Postcode", false)));

}  // namespace
}  // namespace d3l

// Snapshot persistence: binary Writer/Reader primitives, layer-by-layer
// Save/Load round trips, full-engine snapshot parity (a loaded engine must
// return byte-identical rankings), and clean Status failures on truncated,
// corrupt and version-mismatched files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/query.h"
#include "io/binary_io.h"
#include "lsh/lsh_ensemble.h"
#include "lsh/lsh_forest.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

constexpr char kTestMagic[9] = "D3LTEST\n";
constexpr uint32_t kId = io::SectionId("BODY");

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("d3l_snapshot_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

DataLake MakeFigureLake() {
  DataLake lake;
  lake.AddTable(testutil::FigureS1()).CheckOK();
  lake.AddTable(testutil::FigureS2()).CheckOK();
  lake.AddTable(testutil::FigureS3()).CheckOK();
  for (int salt = 0; salt < 3; ++salt) {
    lake.AddTable(testutil::FillerColors(salt)).CheckOK();
    lake.AddTable(testutil::FillerInventory(salt)).CheckOK();
  }
  return lake;
}

// ------------------------------------------------------------- primitives

TEST_F(SnapshotTest, WriterReaderPrimitivesRoundTrip) {
  const std::string path = Path("prims.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
  w.BeginSection(kId);
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI32(-42);
  w.WriteBool(true);
  w.WriteDouble(-0.25);
  w.WriteString("hello, \0world");  // embedded NUL truncates the literal: fine
  w.WriteString("");
  w.WriteU64Vector({1, 2, 3});
  w.WriteDoubleVector({0.5, -1.5});
  w.WriteFloatVector({2.0f, -8.25f});
  ASSERT_TRUE(w.Finish().ok());

  io::Reader r;
  ASSERT_TRUE(r.Open(path, kTestMagic, 3).ok());
  ASSERT_TRUE(r.OpenSection(kId).ok());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadDouble(), -0.25);
  EXPECT_EQ(r.ReadString(), "hello, ");
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadU64Vector(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{0.5, -1.5}));
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{2.0f, -8.25f}));
  EXPECT_TRUE(r.EndSection().ok());
  EXPECT_TRUE(r.status().ok());
}

TEST_F(SnapshotTest, ReaderRejectsWrongMagicAndVersion) {
  const std::string path = Path("magic.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
  w.BeginSection(kId);
  w.WriteU64(1);
  ASSERT_TRUE(w.Finish().ok());

  io::Reader wrong_version;
  Status s = wrong_version.Open(path, kTestMagic, 4);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("version"), std::string::npos);

  constexpr char kOtherMagic[9] = "NOTD3L!\n";
  io::Reader wrong_magic;
  EXPECT_TRUE(wrong_magic.Open(path, kOtherMagic, 3).IsInvalidArgument());

  io::Reader missing;
  EXPECT_TRUE(missing.Open(Path("nope.bin"), kTestMagic, 3).IsNotFound());
}

// --------------------------------------------------------- atomic writes

TEST_F(SnapshotTest, FinishPublishesAtomicallyAndLeavesNoTempFile) {
  const std::string path = Path("atomic.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
  // Until Finish, only the temp file exists: a crash here would leave the
  // target untouched.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".tmp"));
  w.BeginSection(kId);
  w.WriteU64(7);
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(SnapshotTest, AbandonedWriterLeavesPreviousFileIntact) {
  const std::string path = Path("durable.bin");
  {
    io::Writer w;
    ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
    w.BeginSection(kId);
    w.WriteU64(42);
    ASSERT_TRUE(w.Finish().ok());
  }
  {
    // A writer that dies mid-write (simulating a crash or error bail-out)
    // must neither clobber the published file nor leave its temp behind.
    io::Writer w;
    ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
    w.BeginSection(kId);
    w.WriteU64(999);
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  io::Reader r;
  ASSERT_TRUE(r.Open(path, kTestMagic, 3).ok());
  ASSERT_TRUE(r.OpenSection(kId).ok());
  EXPECT_EQ(r.ReadU64(), 42u);  // the old contents survived
}

TEST_F(SnapshotTest, ReaderAcceptsVersionRange) {
  const std::string path = Path("versioned.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
  w.BeginSection(kId);
  w.WriteU64(1);
  ASSERT_TRUE(w.Finish().ok());

  uint32_t found = 0;
  io::Reader in_range;
  ASSERT_TRUE(in_range.Open(path, kTestMagic, 2, 4, &found).ok());
  EXPECT_EQ(found, 3u);

  io::Reader below;
  Status s = below.Open(path, kTestMagic, 4, 6, &found);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("v4..v6"), std::string::npos);
}

TEST_F(SnapshotTest, ReaderDetectsOverreadAndBadLengths) {
  const std::string path = Path("short.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 3).ok());
  w.BeginSection(kId);
  w.WriteU32(7);
  // A length prefix claiming far more elements than the payload holds.
  w.WriteU64(uint64_t{1} << 60);
  ASSERT_TRUE(w.Finish().ok());

  io::Reader r;
  ASSERT_TRUE(r.Open(path, kTestMagic, 3).ok());
  ASSERT_TRUE(r.OpenSection(kId).ok());
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_TRUE(r.ReadU64Vector().empty());
  EXPECT_TRUE(r.status().IsOutOfRange());
  // The error latches: later reads keep failing, no crash.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_FALSE(r.status().ok());

  io::Reader r2;
  ASSERT_TRUE(r2.Open(path, kTestMagic, 3).ok());
  ASSERT_TRUE(r2.OpenSection(kId).ok());
  (void)r2.ReadU32();
  EXPECT_FALSE(r2.EndSection().ok());  // unread bytes detected
}

// ----------------------------------------------------- layer round trips

TEST_F(SnapshotTest, LshForestRoundTripPreservesQueries) {
  MinHasher hasher(64, 99);
  LshForest forest;
  std::vector<Signature> sigs;
  for (uint32_t i = 0; i < 40; ++i) {
    std::set<std::string> s;
    for (int j = 0; j < 30; ++j) {
      s.insert("e" + std::to_string((i * 13 + j * 7) % 200));
    }
    sigs.push_back(hasher.Sign(s));
    forest.Insert(i, sigs.back());
  }
  forest.Index();

  const std::string path = Path("forest.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 1).ok());
  w.BeginSection(kId);
  forest.Save(w);
  ASSERT_TRUE(w.Finish().ok());

  io::Reader r;
  ASSERT_TRUE(r.Open(path, kTestMagic, 1).ok());
  ASSERT_TRUE(r.OpenSection(kId).ok());
  LshForest loaded = LshForest::Load(r);
  ASSERT_TRUE(r.status().ok());
  ASSERT_TRUE(r.EndSection().ok());

  EXPECT_EQ(loaded.size(), forest.size());
  EXPECT_EQ(loaded.num_trees(), forest.num_trees());
  for (const Signature& q : sigs) {
    EXPECT_EQ(loaded.Query(q, 10), forest.Query(q, 10));
    EXPECT_EQ(loaded.QueryAtDepth(q, 2), forest.QueryAtDepth(q, 2));
  }
}

TEST_F(SnapshotTest, LshEnsembleRoundTripPreservesContainmentQueries) {
  MinHasher hasher(128, 5);
  LshEnsembleOptions ensemble_options;
  ensemble_options.signature_size = 128;  // must match the hasher's k
  LshEnsemble ensemble(ensemble_options);
  std::vector<std::pair<Signature, size_t>> queries;
  for (uint32_t i = 0; i < 30; ++i) {
    std::set<std::string> s;
    size_t n = 10 + i * 7;  // skewed cardinalities
    for (size_t j = 0; j < n; ++j) s.insert("v" + std::to_string(j * (i % 5 + 1)));
    ensemble.Insert(i, hasher.Sign(s), s.size());
    if (i % 6 == 0) queries.emplace_back(hasher.Sign(s), s.size());
  }
  ensemble.Index();

  const std::string path = Path("ensemble.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 1).ok());
  w.BeginSection(kId);
  ensemble.Save(w);
  ASSERT_TRUE(w.Finish().ok());

  io::Reader r;
  ASSERT_TRUE(r.Open(path, kTestMagic, 1).ok());
  ASSERT_TRUE(r.OpenSection(kId).ok());
  LshEnsemble loaded = LshEnsemble::Load(r);
  ASSERT_TRUE(r.status().ok());
  ASSERT_TRUE(r.EndSection().ok());

  EXPECT_EQ(loaded.size(), ensemble.size());
  EXPECT_EQ(loaded.num_partitions(), ensemble.num_partitions());
  for (const auto& [sig, size] : queries) {
    EXPECT_EQ(loaded.QueryContainment(sig, size, 0.6),
              ensemble.QueryContainment(sig, size, 0.6));
  }
}

TEST_F(SnapshotTest, LakeMetadataRoundTrip) {
  DataLake lake = MakeFigureLake();
  const std::string path = Path("lake.bin");
  io::Writer w;
  ASSERT_TRUE(w.Open(path, kTestMagic, 1).ok());
  w.BeginSection(kId);
  lake.SaveMetadata(w);
  ASSERT_TRUE(w.Finish().ok());

  io::Reader r;
  ASSERT_TRUE(r.Open(path, kTestMagic, 1).ok());
  ASSERT_TRUE(r.OpenSection(kId).ok());
  DataLake loaded;
  ASSERT_TRUE(loaded.LoadMetadata(r).ok());
  ASSERT_TRUE(r.EndSection().ok());

  ASSERT_EQ(loaded.size(), lake.size());
  for (size_t i = 0; i < lake.size(); ++i) {
    EXPECT_EQ(loaded.table(i).name(), lake.table(i).name());
    ASSERT_EQ(loaded.table(i).num_columns(), lake.table(i).num_columns());
    EXPECT_EQ(loaded.table(i).num_rows(), 0u);  // schema only, no cells
    for (size_t c = 0; c < lake.table(i).num_columns(); ++c) {
      EXPECT_EQ(loaded.table(i).column(c).name(), lake.table(i).column(c).name());
    }
    // Name lookup survives the round trip.
    EXPECT_EQ(loaded.TableIndex(lake.table(i).name()), static_cast<int>(i));
  }
}

// ------------------------------------------------- full-engine snapshot

TEST_F(SnapshotTest, LoadedEngineReturnsIdenticalRankings) {
  DataLake lake = MakeFigureLake();
  core::D3LEngine built;
  ASSERT_TRUE(built.IndexLake(lake).ok());

  const std::string path = Path("engine.d3l");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  DataLake lake_metadata;
  auto loaded_result = core::D3LEngine::LoadSnapshot(path, &lake_metadata);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  auto loaded = std::move(loaded_result).ValueOrDie();

  // Registry and mapping parity.
  ASSERT_EQ(loaded->indexes().num_attributes(), built.indexes().num_attributes());
  for (uint32_t ti = 0; ti < lake.size(); ++ti) {
    EXPECT_EQ(loaded->subject_column(ti), built.subject_column(ti));
    for (uint32_t c = 0; c < lake.table(ti).num_columns(); ++c) {
      EXPECT_EQ(loaded->attribute_id(ti, c), built.attribute_id(ti, c));
    }
  }

  // Per-evidence lookup parity on every indexed signature.
  for (uint32_t id = 0; id < built.indexes().num_attributes(); ++id) {
    const auto& q = built.indexes().signatures(id);
    for (core::Evidence e :
         {core::Evidence::kName, core::Evidence::kValue, core::Evidence::kFormat,
          core::Evidence::kEmbedding}) {
      EXPECT_EQ(loaded->indexes().Lookup(e, q, 8), built.indexes().Lookup(e, q, 8));
      EXPECT_EQ(loaded->indexes().LookupThreshold(e, q),
                built.indexes().LookupThreshold(e, q));
    }
    EXPECT_EQ(loaded->indexes().LookupValueJoin(q), built.indexes().LookupValueJoin(q));
  }

  // End-to-end ranking parity: same tables, bit-identical distances.
  Table target = testutil::FigureTarget();
  auto res_built = built.Search(target, 5);
  auto res_loaded = loaded->Search(target, 5);
  ASSERT_TRUE(res_built.ok());
  ASSERT_TRUE(res_loaded.ok());
  ASSERT_EQ(res_loaded->ranked.size(), res_built->ranked.size());
  for (size_t i = 0; i < res_built->ranked.size(); ++i) {
    EXPECT_EQ(res_loaded->ranked[i].table_index, res_built->ranked[i].table_index);
    EXPECT_EQ(res_loaded->ranked[i].distance, res_built->ranked[i].distance);
    EXPECT_EQ(res_loaded->ranked[i].evidence_distances,
              res_built->ranked[i].evidence_distances);
  }
  // The Figure-1 golden shape survives: S2/S3 rank above all fillers.
  ASSERT_GE(res_loaded->ranked.size(), 2u);
  std::set<uint32_t> top2 = {res_loaded->ranked[0].table_index,
                             res_loaded->ranked[1].table_index};
  EXPECT_TRUE(top2.count(1) || top2.count(2));
}

TEST_F(SnapshotTest, LoadedEngineRefusesReindexAndSavesAgain) {
  DataLake lake = MakeFigureLake();
  core::D3LEngine built;
  ASSERT_TRUE(built.IndexLake(lake).ok());
  const std::string path = Path("engine.d3l");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  DataLake lake_metadata;
  auto loaded = core::D3LEngine::LoadSnapshot(path, &lake_metadata);
  ASSERT_TRUE(loaded.ok());
  // A snapshot-backed engine is already indexed.
  EXPECT_TRUE((*loaded)->IndexLake(lake).IsInvalidArgument());
  // Re-saving a loaded engine produces a loadable snapshot (save/load/save
  // closure) with identical search behaviour.
  const std::string path2 = Path("engine2.d3l");
  ASSERT_TRUE((*loaded)->SaveSnapshot(path2).ok());
  DataLake lake_metadata2;
  auto reloaded = core::D3LEngine::LoadSnapshot(path2, &lake_metadata2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  Table target = testutil::FigureTarget();
  auto a = (*loaded)->Search(target, 3);
  auto b = (*reloaded)->Search(target, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->ranked.size(), b->ranked.size());
  for (size_t i = 0; i < a->ranked.size(); ++i) {
    EXPECT_EQ(a->ranked[i].table_index, b->ranked[i].table_index);
    EXPECT_EQ(a->ranked[i].distance, b->ranked[i].distance);
  }
}

TEST_F(SnapshotTest, SaveBeforeIndexFails) {
  core::D3LEngine engine;
  EXPECT_TRUE(engine.SaveSnapshot(Path("x.d3l")).IsInvalidArgument());
}

// ------------------------------------------------- zero-copy / mapped load

// Ranking parity between two loaded engines over the same search.
void ExpectIdenticalSearch(core::D3LEngine& a, core::D3LEngine& b) {
  Table target = testutil::FigureTarget();
  auto ra = a.Search(target, 5);
  auto rb = b.Search(target, 5);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra->ranked.size(), rb->ranked.size());
  for (size_t i = 0; i < ra->ranked.size(); ++i) {
    EXPECT_EQ(ra->ranked[i].table_index, rb->ranked[i].table_index);
    EXPECT_EQ(ra->ranked[i].distance, rb->ranked[i].distance);
    EXPECT_EQ(ra->ranked[i].evidence_distances, rb->ranked[i].evidence_distances);
  }
}

TEST_F(SnapshotTest, MappedAndCopiedLoadsRankIdentically) {
  DataLake lake = MakeFigureLake();
  core::D3LEngine built;
  ASSERT_TRUE(built.IndexLake(lake).ok());
  const std::string path = Path("engine.d3l");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  DataLake meta_mapped, meta_copied;
  auto mapped = core::D3LEngine::LoadSnapshot(path, &meta_mapped,
                                              core::SnapshotLoadMode::kMapped);
  auto copied = core::D3LEngine::LoadSnapshot(path, &meta_copied,
                                              core::SnapshotLoadMode::kCopied);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();

  EXPECT_EQ((*mapped)->load_stats().format_version, core::D3LEngine::kSnapshotVersion);
  EXPECT_EQ((*copied)->load_stats().format_version, core::D3LEngine::kSnapshotVersion);
  EXPECT_FALSE((*copied)->load_stats().mapped);
  // On this platform the default mode should really map (no silent
  // regression to the copy path).
  EXPECT_TRUE((*mapped)->load_stats().mapped);

  ExpectIdenticalSearch(**mapped, **copied);
}

TEST_F(SnapshotTest, MmapDisableEnvFallsBackToBufferedIdentically) {
  DataLake lake = MakeFigureLake();
  core::D3LEngine built;
  ASSERT_TRUE(built.IndexLake(lake).ok());
  const std::string path = Path("engine.d3l");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  // With D3L_DISABLE_MMAP set, a kMapped open silently degrades to the
  // buffered path — identical results, just not zero-copy.
  ASSERT_EQ(setenv("D3L_DISABLE_MMAP", "1", 1), 0);
  DataLake meta_fallback;
  auto fallback = core::D3LEngine::LoadSnapshot(path, &meta_fallback,
                                                core::SnapshotLoadMode::kMapped);
  ASSERT_EQ(unsetenv("D3L_DISABLE_MMAP"), 0);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE((*fallback)->load_stats().mapped);

  DataLake meta_mapped;
  auto mapped = core::D3LEngine::LoadSnapshot(path, &meta_mapped,
                                              core::SnapshotLoadMode::kMapped);
  ASSERT_TRUE(mapped.ok());
  ExpectIdenticalSearch(**fallback, **mapped);
}

TEST_F(SnapshotTest, SnapshotInfoReportsFormatVersionAndMappability) {
  DataLake lake = MakeFigureLake();
  core::D3LEngine built;
  ASSERT_TRUE(built.IndexLake(lake).ok());
  const std::string path = Path("engine.d3l");
  ASSERT_TRUE(built.SaveSnapshot(path).ok());

  auto info = core::D3LEngine::ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, core::D3LEngine::kSnapshotVersion);
  EXPECT_TRUE(info->mappable);
}

// ------------------------------------------------- v1 back-compat (golden)

// The checked-in fixture was written by the pre-flat-layout v1 writer over
// this exact lake; the loader must keep reading it forever.
DataLake MakeGoldenLake() {
  DataLake lake;
  lake.AddTable(testutil::FigureS1()).CheckOK();
  lake.AddTable(testutil::FigureS2()).CheckOK();
  lake.AddTable(testutil::FigureS3()).CheckOK();
  lake.AddTable(testutil::FillerColors(0)).CheckOK();
  lake.AddTable(testutil::FillerInventory(0)).CheckOK();
  return lake;
}

TEST_F(SnapshotTest, GoldenV1SnapshotStillLoads) {
  const std::string golden = std::string(D3L_TEST_DATA_DIR) + "/golden_v1.snap";
  ASSERT_TRUE(fs::exists(golden)) << golden;

  auto info = core::D3LEngine::ReadSnapshotInfo(golden);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->format_version, 1u);
  EXPECT_FALSE(info->mappable);

  DataLake meta;
  auto loaded = core::D3LEngine::LoadSnapshot(golden, &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->load_stats().format_version, 1u);
  // v1 predates the alignment padding; its forests always copy.
  EXPECT_FALSE((*loaded)->load_stats().mapped);

  // A freshly built engine over the same lake ranks identically — the old
  // wire format decodes to the same index state as today's.
  DataLake lake = MakeGoldenLake();
  core::D3LEngine built;
  ASSERT_TRUE(built.IndexLake(lake).ok());
  ASSERT_EQ(meta.size(), lake.size());
  ExpectIdenticalSearch(**loaded, built);
}

// ------------------------------------------------------- damaged files

class DamagedSnapshotTest : public SnapshotTest {
 protected:
  // Builds a small engine snapshot and returns its path.
  std::string BuildSnapshot() {
    lake_ = MakeFigureLake();
    core::D3LEngine engine;
    EXPECT_TRUE(engine.IndexLake(lake_).ok());
    std::string path = Path("victim.d3l");
    EXPECT_TRUE(engine.SaveSnapshot(path).ok());
    return path;
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  DataLake lake_;
};

TEST_F(DamagedSnapshotTest, TruncatedFilesFailCleanly) {
  std::string path = BuildSnapshot();
  std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 64u);
  // Truncate at several depths: inside the header, inside a section header,
  // and mid-payload.
  for (size_t keep : {size_t{4}, size_t{11}, size_t{20}, bytes.size() / 2,
                      bytes.size() - 3}) {
    std::string trunc_path = Path("trunc_" + std::to_string(keep) + ".d3l");
    WriteAll(trunc_path, bytes.substr(0, keep));
    for (auto mode :
         {core::SnapshotLoadMode::kMapped, core::SnapshotLoadMode::kCopied}) {
      DataLake meta;
      auto result = core::D3LEngine::LoadSnapshot(trunc_path, &meta, mode);
      EXPECT_FALSE(result.ok()) << "keep=" << keep;
    }
  }
}

TEST_F(DamagedSnapshotTest, BitFlipsAreCaughtByChecksums) {
  std::string path = BuildSnapshot();
  std::string bytes = ReadAll(path);
  // Flip one byte at several positions spread across the file (skipping the
  // 12-byte magic+version header, whose damage surfaces as bad magic or
  // version instead).
  for (size_t pos : {size_t{14}, bytes.size() / 4, bytes.size() / 2,
                     3 * bytes.size() / 4, bytes.size() - 2}) {
    std::string flip_path = Path("flip_" + std::to_string(pos) + ".d3l");
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    WriteAll(flip_path, damaged);
    // Checksums must catch the damage on both the mapped (zero-copy) and
    // the buffered path.
    for (auto mode :
         {core::SnapshotLoadMode::kMapped, core::SnapshotLoadMode::kCopied}) {
      DataLake meta;
      auto result = core::D3LEngine::LoadSnapshot(flip_path, &meta, mode);
      EXPECT_FALSE(result.ok()) << "pos=" << pos;
    }
  }
}

TEST_F(DamagedSnapshotTest, WrongVersionNamesBothVersions) {
  std::string path = BuildSnapshot();
  std::string bytes = ReadAll(path);
  bytes[8] = 99;  // format version lives right after the 8-byte magic
  WriteAll(path, bytes);
  DataLake meta;
  auto result = core::D3LEngine::LoadSnapshot(path, &meta);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("99"), std::string::npos);
}

TEST_F(DamagedSnapshotTest, ForeignFileIsRejectedAsNotASnapshot) {
  std::string path = Path("foreign.d3l");
  WriteAll(path, "Practice,City\nBlackfriars,Salford\n");
  DataLake meta;
  auto result = core::D3LEngine::LoadSnapshot(path, &meta);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace d3l

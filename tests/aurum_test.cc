#include "baselines/aurum.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace d3l::baselines {
namespace {

class AurumTest : public ::testing::Test {
 protected:
  AurumEngine engine_;
};

TEST_F(AurumTest, SearchBeforeBuildFails) {
  EXPECT_FALSE(engine_.Search(testutil::FigureTarget(), 3).ok());
}

TEST_F(AurumTest, BuildsGraphWithEdges) {
  DataLake lake = testutil::FigureLake(4);
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  const AurumBuildStats& s = engine_.build_stats();
  EXPECT_GT(s.num_nodes, 0u);
  EXPECT_GT(s.num_edges, 0u);  // the GP tables' columns must connect
  EXPECT_GT(s.index_bytes, 0u);
  EXPECT_TRUE(engine_.BuildEkg(lake).IsInvalidArgument());
}

TEST_F(AurumTest, CertaintyRankingFindsGpTables) {
  DataLake lake = testutil::FigureLake(5);
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  auto res = engine_.Search(testutil::FigureTarget(), 3);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  std::string top = lake.table(res->ranked[0].table_index).name();
  EXPECT_TRUE(top.find("gp") != std::string::npos ||
              top.find("local") != std::string::npos)
      << top;
  for (size_t i = 1; i < res->ranked.size(); ++i) {
    EXPECT_GE(res->ranked[i - 1].score, res->ranked[i].score);
  }
}

TEST_F(AurumTest, PkFkCandidatesDetected) {
  DataLake lake;
  // Practice names: near-unique on both sides with heavy containment — a
  // textbook PK/FK candidate.
  lake.AddTable(testutil::FigureS1()).CheckOK();
  lake.AddTable(testutil::FigureS2()).CheckOK();
  lake.AddTable(testutil::FigureS3()).CheckOK();
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  EXPECT_GT(engine_.num_fk_edges(), 0u);
}

TEST_F(AurumTest, JoinExpandReachesFkNeighbours) {
  DataLake lake = testutil::FigureLake(3);
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  int s1 = lake.TableIndex("s1_gp_practices");
  ASSERT_GE(s1, 0);
  auto expanded = engine_.JoinExpand({static_cast<uint32_t>(s1)}, 2);
  // Expansion must not include the seed itself.
  EXPECT_EQ(std::count(expanded.begin(), expanded.end(), static_cast<uint32_t>(s1)),
            0);
  // With FK edges present, some GP neighbour should be reachable.
  if (engine_.num_fk_edges() > 0) {
    EXPECT_FALSE(expanded.empty());
  }
}

TEST_F(AurumTest, AlignmentsReported) {
  DataLake lake = testutil::FigureLake(2);
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  auto res = engine_.Search(testutil::FigureTarget(), 2);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_FALSE(res->ranked[0].alignments.empty());
  EXPECT_FALSE(res->candidate_alignments.empty());
}

TEST_F(AurumTest, NumericColumnsProfiledWithRanges) {
  DataLake lake;
  lake.AddTable(testutil::MakeTable("a", {"ID", "Amount"},
                                    {{"x1", "10"}, {"x2", "20"}, {"x3", "30"}}))
      .CheckOK();
  lake.AddTable(testutil::MakeTable("b", {"Key", "Amount"},
                                    {{"y1", "12"}, {"y2", "22"}, {"y3", "28"}}))
      .CheckOK();
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  // Overlapping ranges with identical names must produce an edge between
  // the two Amount columns.
  EXPECT_GT(engine_.num_graph_edges(), 0u);
}

TEST_F(AurumTest, GraphDominatesBuildTimeOnLargerInput) {
  DataLake lake = testutil::FigureLake(30);
  ASSERT_TRUE(engine_.BuildEkg(lake).ok());
  // Not a strict timing assertion (too flaky); both phases must be timed.
  EXPECT_GE(engine_.build_stats().profile_seconds, 0.0);
  EXPECT_GE(engine_.build_stats().graph_seconds, 0.0);
}

}  // namespace
}  // namespace d3l::baselines

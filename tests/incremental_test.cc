// Incremental shard re-profiling (serving::UpdateShards): diffs against
// the v2 manifest's recorded source identities must rebuild exactly the
// affected shards, and — the core property — the updated deployment's
// Search results must be byte-identical to a from-scratch BuildShards over
// the new lake at the same placement, after adds, removes, edits and
// no-ops. Also covers v1 manifest compatibility, manifest path-traversal
// rejection, staleness checking and the crash-safety of the write paths.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/query.h"
#include "io/binary_io.h"
#include "serving/discovery_service.h"
#include "serving/manifest.h"
#include "serving/search_backend.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "table/csv.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

void ExpectIdenticalResults(const core::SearchResult& expected,
                            const core::SearchResult& actual,
                            const std::string& context) {
  ASSERT_EQ(actual.ranked.size(), expected.ranked.size()) << context;
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    const core::TableMatch& e = expected.ranked[i];
    const core::TableMatch& a = actual.ranked[i];
    EXPECT_EQ(a.table_index, e.table_index) << context << " rank " << i;
    // Bitwise equality: a reused shard must reproduce the fresh build's
    // floating-point work exactly.
    EXPECT_EQ(a.distance, e.distance) << context << " rank " << i;
    EXPECT_EQ(a.evidence_distances, e.evidence_distances) << context << " rank " << i;
    ASSERT_EQ(a.pairs.size(), e.pairs.size()) << context << " rank " << i;
    for (size_t p = 0; p < e.pairs.size(); ++p) {
      EXPECT_EQ(a.pairs[p].target_column, e.pairs[p].target_column) << context;
      EXPECT_EQ(a.pairs[p].attribute_id, e.pairs[p].attribute_id) << context;
      EXPECT_EQ(a.pairs[p].d, e.pairs[p].d) << context;
    }
  }
  ASSERT_EQ(actual.candidate_alignments.size(), expected.candidate_alignments.size())
      << context;
  for (const auto& [table, aligns] : expected.candidate_alignments) {
    auto it = actual.candidate_alignments.find(table);
    ASSERT_NE(it, actual.candidate_alignments.end()) << context;
    EXPECT_EQ(it->second, aligns) << context;
  }
}

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid keeps concurrent runs (e.g. a default and a sanitizer tree
    // testing side by side) out of each other's directories.
    dir_ = fs::temp_directory_path() /
           ("d3l_incremental_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    csv_dir_ = dir_ / "lake";
    fs::create_directories(csv_dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Base(const std::string& name) const { return (dir_ / name).string(); }

  /// Populates the CSV directory with the Figure-1 tables plus fillers —
  /// enough distinct tables for 3 shards with room to add/remove.
  void WriteLakeCsvs() {
    WriteCsv(testutil::FigureS1());
    WriteCsv(testutil::FigureS2());
    WriteCsv(testutil::FigureS3());
    for (int salt = 0; salt < 2; ++salt) {
      WriteCsv(testutil::FillerColors(salt));
      WriteCsv(testutil::FillerInventory(salt));
      WriteCsv(testutil::FillerWeather(salt));
    }
  }

  void WriteCsv(const Table& t) {
    WriteCsvFile(t, (csv_dir_ / (t.name() + ".csv")).string()).CheckOK();
  }

  DataLake LoadLake() const {
    DataLake lake;
    lake.LoadDirectory(csv_dir_.string()).CheckOK();
    return lake;
  }

  /// The property the tentpole promises: after UpdateShards, opening the
  /// updated deployment and a from-scratch BuildShards at the SAME
  /// placement yields byte-identical rankings for every lake table used as
  /// a target.
  void ExpectEquivalentToFreshBuild(const DataLake& lake,
                                    const serving::ShardingOptions& options,
                                    const std::string& updated_base,
                                    const serving::ShardPlan& plan,
                                    const std::string& context) {
    auto fresh =
        serving::BuildShards(lake, options, Base("fresh_" + context), &plan);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

    auto updated_open =
        serving::ShardedEngine::Open(serving::ManifestPath(updated_base));
    ASSERT_TRUE(updated_open.ok()) << updated_open.status().ToString();
    auto fresh_open = serving::ShardedEngine::Open(fresh->manifest_path);
    ASSERT_TRUE(fresh_open.ok()) << fresh_open.status().ToString();

    for (size_t t = 0; t < lake.size(); ++t) {
      auto expected = (*fresh_open)->Search(lake.table(t), 5);
      auto actual = (*updated_open)->Search(lake.table(t), 5);
      ASSERT_TRUE(expected.ok() && actual.ok()) << context;
      ExpectIdenticalResults(*expected, *actual,
                             context + " target " + lake.table(t).name());
    }
  }

  fs::path dir_;
  fs::path csv_dir_;
};

TEST_F(IncrementalTest, NoOpUpdateReusesEveryShardAndKeepsFingerprint) {
  WriteLakeCsvs();
  DataLake lake = LoadLake();
  serving::ShardingOptions options;
  options.num_shards = 3;
  ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  auto before = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(before.ok());
  const uint64_t fp_before = (*before)->Info().index_fingerprint;

  DataLake reloaded = LoadLake();
  auto report = serving::UpdateShards(reloaded, options, Base("dep"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->rebuilt_shards.empty());
  EXPECT_EQ(report->shards_reused, 3u);
  EXPECT_TRUE(report->added.empty());
  EXPECT_TRUE(report->removed.empty());
  EXPECT_TRUE(report->changed.empty());

  // Nothing changed, so the rewritten manifest digests identically: cached
  // results stay valid across a no-op update.
  auto after = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)->Info().index_fingerprint, fp_before);
  ExpectEquivalentToFreshBuild(reloaded, options, Base("dep"), report->plan, "noop");
}

TEST_F(IncrementalTest, EditOneTableRebuildsOnlyItsShardAndFlipsFingerprint) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 3;
  {
    DataLake lake = LoadLake();
    ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  }
  auto before = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(before.ok());
  const uint64_t fp_before = (*before)->Info().index_fingerprint;

  // Edit one CSV in place: append a row to S2.
  Table s2 = testutil::FigureS2();
  ASSERT_TRUE(s2.AddRow({"Zed Practice", "Zedville", "ZZ1 1ZZ", "123"}).ok());
  WriteCsv(s2);

  DataLake lake = LoadLake();
  auto report = serving::UpdateShards(lake, options, Base("dep"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rebuilt_shards.size(), 1u);
  EXPECT_EQ(report->shards_reused, 2u);
  EXPECT_EQ(report->changed, std::vector<std::string>{"s2_gp_funding.csv"});
  EXPECT_TRUE(report->added.empty());
  EXPECT_TRUE(report->removed.empty());
  // The rebuilt shard is the one whose plan contains the edited table.
  const int edited = lake.TableIndex(s2.name());
  ASSERT_GE(edited, 0);
  const auto& rebuilt_tables = report->plan[report->rebuilt_shards[0]];
  EXPECT_TRUE(std::find(rebuilt_tables.begin(), rebuilt_tables.end(),
                        static_cast<uint32_t>(edited)) != rebuilt_tables.end());

  auto after = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE((*after)->Info().index_fingerprint, fp_before);
  ExpectEquivalentToFreshBuild(lake, options, Base("dep"), report->plan, "edit");
}

TEST_F(IncrementalTest, AddAndRemoveTablesRebuildOnlyAffectedShards) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 3;
  options.balance = serving::ShardingOptions::Balance::kRoundRobin;
  {
    DataLake lake = LoadLake();
    ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  }

  // Add a brand-new table and remove an existing one in the same update.
  WriteCsv(testutil::FillerColors(7));
  fs::remove(csv_dir_ / "filler_weather_1.csv");

  // The update is called with DEFAULT options (size-balanced): the
  // deployment's recorded round-robin policy must win, not the caller's.
  DataLake lake = LoadLake();
  auto report = serving::UpdateShards(lake, serving::ShardingOptions{}, Base("dep"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto manifest = serving::ShardManifest::Load(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->balance, "round-robin");
  EXPECT_EQ(report->added, std::vector<std::string>{"filler_colors_7.csv"});
  EXPECT_EQ(report->removed, std::vector<std::string>{"filler_weather_1.csv"});
  EXPECT_TRUE(report->changed.empty());
  // At most two shards can be affected (the gainer and the loser; possibly
  // the same one), and at least one must have been reused.
  EXPECT_LE(report->rebuilt_shards.size(), 2u);
  EXPECT_GE(report->shards_reused, 1u);
  EXPECT_EQ(report->rebuilt_shards.size() + report->shards_reused, 3u);

  ExpectEquivalentToFreshBuild(lake, options, Base("dep"), report->plan, "addrm");
}

TEST_F(IncrementalTest, InMemoryEditOfLoadedTableDiffsAsChanged) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 3;
  {
    DataLake lake = LoadLake();
    ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  }

  // Mutate a CSV-loaded table in memory (no file touched): AddRow clears
  // the load-time source identity, so the diff must see the divergence
  // as a content change — never reuse the stale shard.
  DataLake lake = LoadLake();
  const int edited = lake.TableIndex("s3_local_gps");
  ASSERT_GE(edited, 0);
  ASSERT_TRUE(lake.table(edited).AddRow({"In-Memory GP", "Nowhere", "00:00-00:00"}).ok());

  auto report = serving::UpdateShards(lake, options, Base("dep"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->changed, std::vector<std::string>{"s3_local_gps.csv"});
  ASSERT_EQ(report->rebuilt_shards.size(), 1u);
  EXPECT_EQ(report->shards_reused, 2u);
  ExpectEquivalentToFreshBuild(lake, options, Base("dep"), report->plan, "inmem");
}

TEST_F(IncrementalTest, UpdatedDeploymentInvalidatesResultCacheKeys) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 2;
  {
    DataLake lake = LoadLake();
    ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  }
  auto before = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(before.ok());

  Table s3 = testutil::FigureS3();
  ASSERT_TRUE(s3.AddRow({"UCL Extra", "London", "10:00-12:00"}).ok());
  WriteCsv(s3);
  DataLake lake = LoadLake();
  ASSERT_TRUE(serving::UpdateShards(lake, options, Base("dep")).ok());
  auto after = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(after.ok());

  // Identical query, identical options — but the index fingerprint folded
  // into every cache key changed with the rebuilt shard, so entries cached
  // against the old deployment can never serve the new one.
  serving::DiscoveryServiceOptions service_options;
  service_options.inline_execution = true;
  serving::DiscoveryService service_before(before->get(), service_options);
  serving::DiscoveryService service_after(after->get(), service_options);
  const Table target = testutil::FigureS1();
  auto profiled = (*before)->Profile(target);
  ASSERT_TRUE(profiled.ok());
  const auto mask = (*before)->options().enabled;
  serving::CacheKey key_before = service_before.KeyFor(*profiled, 5, mask);
  serving::CacheKey key_after = service_after.KeyFor(*profiled, 5, mask);
  EXPECT_FALSE(key_before == key_after);
}

TEST_F(IncrementalTest, V1ManifestLoadsAndServesButRefusesUpdate) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 2;
  DataLake lake = LoadLake();
  ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  auto loaded = serving::ShardManifest::Load(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->version, serving::ShardManifest::kVersion);
  EXPECT_TRUE(loaded->has_source_identity());

  // Rewrite the manifest in the v1 layout (no source identities) — the
  // bytes a pre-incremental builder would have produced.
  const std::string v1_path = serving::ManifestPath(Base("dep"));
  {
    io::Writer w;
    ASSERT_TRUE(w.Open(v1_path, serving::ShardManifest::kMagic, 1).ok());
    w.BeginSection(io::SectionId("MANF"));
    w.WriteU64(loaded->total_tables);
    w.WriteU64(loaded->total_attributes);
    w.WriteString(loaded->balance);
    w.WriteU64(loaded->shards.size());
    for (const serving::ShardManifestEntry& e : loaded->shards) {
      w.WriteString(e.file);
      w.WriteU64(e.file_bytes);
      w.WriteU32(e.file_crc32);
      w.WriteU32(e.schema_crc32);
      w.WriteU64(e.num_tables);
      w.WriteU64(e.num_attributes);
      w.WriteU64(e.global_tables.size());
      for (uint32_t g : e.global_tables) w.WriteU32(g);
    }
    ASSERT_TRUE(w.Finish().ok());
  }

  // v1 still loads and serves (read-only compatibility)...
  auto v1 = serving::ShardManifest::Load(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->version, 1u);
  EXPECT_FALSE(v1->has_source_identity());
  auto opened = serving::ShardedEngine::Open(v1_path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->Search(lake.table(0), 3).ok());

  // ...but cannot be updated incrementally: no recorded sources to diff.
  auto update = serving::UpdateShards(lake, options, Base("dep"));
  ASSERT_FALSE(update.ok());
  EXPECT_TRUE(update.status().IsInvalidArgument());

  // Staleness checks need sources too.
  EXPECT_FALSE(serving::CheckFreshness(*v1, csv_dir_.string()).ok());
}

TEST_F(IncrementalTest, ValidateRejectsEscapingShardFilenames) {
  WriteLakeCsvs();
  DataLake lake = LoadLake();
  serving::ShardingOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  auto manifest = serving::ShardManifest::Load(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(manifest.ok());

  for (const std::string& evil :
       {std::string("/abs/path/shard0.d3l"), std::string("../escape.d3l"),
        std::string("sub/../../escape.d3l")}) {
    serving::ShardManifest tampered = *manifest;
    tampered.shards[0].file = evil;
    Status validated = tampered.Validate();
    EXPECT_FALSE(validated.ok()) << evil;
    EXPECT_TRUE(validated.IsInvalidArgument()) << evil;
    // A hand-edited manifest on disk is rejected at Load (Validate runs
    // before any path is resolved), so Open never touches the target.
    const std::string tampered_path = Base("tampered.manifest");
    // Bypass Save's own validation by writing the tampered bytes directly.
    io::Writer w;
    ASSERT_TRUE(w.Open(tampered_path, serving::ShardManifest::kMagic,
                       serving::ShardManifest::kVersion)
                    .ok());
    w.BeginSection(io::SectionId("MANF"));
    w.WriteU64(tampered.total_tables);
    w.WriteU64(tampered.total_attributes);
    w.WriteString(tampered.balance);
    w.WriteU64(tampered.shards.size());
    for (const serving::ShardManifestEntry& e : tampered.shards) {
      w.WriteString(e.file);
      w.WriteU64(e.file_bytes);
      w.WriteU32(e.file_crc32);
      w.WriteU32(e.schema_crc32);
      w.WriteU64(e.num_tables);
      w.WriteU64(e.num_attributes);
      w.WriteU64(e.global_tables.size());
      for (uint32_t g : e.global_tables) w.WriteU32(g);
      w.WriteU64(e.sources.size());
      for (const TableSource& src : e.sources) {
        w.WriteString(src.file);
        w.WriteU64(src.bytes);
        w.WriteU32(src.crc32);
      }
    }
    ASSERT_TRUE(w.Finish().ok());
    EXPECT_FALSE(serving::ShardManifest::Load(tampered_path).ok()) << evil;
    EXPECT_FALSE(serving::ShardedEngine::Open(tampered_path).ok()) << evil;
  }

  // Source filenames are held to the same rule: CheckFreshness resolves
  // them against a caller-supplied directory.
  serving::ShardManifest bad_source = *manifest;
  bad_source.shards[0].sources[0].file = "../../etc/passwd";
  Status bad = bad_source.Validate();
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.IsInvalidArgument());

  // Plain relative subdirectories remain legal.
  serving::ShardManifest nested = *manifest;
  nested.shards[0].file = "sub/dir/shard0.d3l";
  EXPECT_TRUE(nested.Validate().ok());
}

TEST_F(IncrementalTest, UpdateRefusesOptionsDriftAndEmptyShards) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 2;
  DataLake lake = LoadLake();
  ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());

  // Different engine options would make reused and rebuilt shards rank
  // differently — refused while any shard would be reused.
  serving::ShardingOptions drifted = options;
  drifted.engine.candidates_per_attribute += 16;
  auto drift = serving::UpdateShards(lake, drifted, Base("dep"));
  ASSERT_FALSE(drift.ok());
  EXPECT_TRUE(drift.status().IsInvalidArgument());

  // A two-table lake across two shards: removing one empties its shard.
  fs::path tiny_dir = dir_ / "tiny";
  fs::create_directories(tiny_dir);
  WriteCsvFile(testutil::FigureS1(), (tiny_dir / "a.csv").string()).CheckOK();
  WriteCsvFile(testutil::FigureS2(), (tiny_dir / "b.csv").string()).CheckOK();
  DataLake tiny;
  tiny.LoadDirectory(tiny_dir.string()).CheckOK();
  ASSERT_TRUE(serving::BuildShards(tiny, options, Base("tiny")).ok());
  fs::remove(tiny_dir / "b.csv");
  DataLake shrunk;
  shrunk.LoadDirectory(tiny_dir.string()).CheckOK();
  auto emptied = serving::UpdateShards(shrunk, options, Base("tiny"));
  ASSERT_FALSE(emptied.ok());
  EXPECT_TRUE(emptied.status().IsInvalidArgument());
}

TEST_F(IncrementalTest, FailedMidUpdateLeavesOldDeploymentServeable) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 3;
  {
    DataLake lake = LoadLake();
    ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  }
  auto before = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(before.ok());
  const uint64_t fp_before = (*before)->Info().index_fingerprint;
  const Table target = testutil::FigureTarget();
  auto expected = (*before)->Search(target, 5);
  ASSERT_TRUE(expected.ok());

  // Dirty one shard, then sabotage every staged write path: a non-empty
  // directory squatting on StagedShardPath makes the atomic temp->staged
  // rename fail, so the rebuild aborts before anything is committed.
  Table s2 = testutil::FigureS2();
  ASSERT_TRUE(s2.AddRow({"Doomed Practice", "Nowhere", "XX1 1XX", "1"}).ok());
  WriteCsv(s2);
  for (size_t s = 0; s < 3; ++s) {
    const fs::path block = serving::StagedShardPath(Base("dep"), s);
    fs::create_directories(block / "occupied");
  }

  DataLake lake = LoadLake();
  auto update = serving::UpdateShards(lake, options, Base("dep"));
  ASSERT_FALSE(update.ok());

  // The old manifest still loads with its fingerprint intact, and the old
  // deployment opens and answers byte-identically to before the attempt.
  auto manifest = serving::ShardManifest::Load(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  auto after = serving::ShardedEngine::Open(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)->Info().index_fingerprint, fp_before);
  auto served = (*after)->Search(target, 5);
  ASSERT_TRUE(served.ok());
  ExpectIdenticalResults(*expected, *served, "after failed update");

  // Unblock the staged paths: the rerun succeeds and converges on the
  // equivalence guarantee.
  for (size_t s = 0; s < 3; ++s) {
    fs::remove_all(serving::StagedShardPath(Base("dep"), s));
  }
  auto retry = serving::UpdateShards(lake, options, Base("dep"));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ExpectEquivalentToFreshBuild(lake, options, Base("dep"), retry->plan, "retry");
}

TEST_F(IncrementalTest, CheckFreshnessClassifiesUnreadableSources) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 3;
  DataLake lake = LoadLake();
  ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  auto manifest = serving::ShardManifest::Load(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(manifest.ok());

  // Replace a recorded source with a same-named directory: the path
  // exists but its checksums cannot be verified — that is "unreadable",
  // not "missing" (deleted) and never silently "fresh".
  fs::remove(csv_dir_ / "filler_colors_0.csv");
  fs::create_directories(csv_dir_ / "filler_colors_0.csv");

  auto view = serving::CheckFreshness(*manifest, csv_dir_.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  size_t unreadable = 0, missing = 0, changed = 0, stale_shards = 0;
  for (const serving::ShardFreshness& f : view->shards) {
    unreadable += f.unreadable;
    missing += f.missing;
    changed += f.changed;
    if (!f.fresh()) ++stale_shards;
  }
  EXPECT_EQ(unreadable, 1u);
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(changed, 0u);
  EXPECT_EQ(stale_shards, 1u);
  // The squatting directory is not a regular .csv file, so it must not
  // surface as a new lake member either.
  EXPECT_TRUE(view->new_files.empty());
}

TEST_F(IncrementalTest, CheckFreshnessReportsPerShardStaleness) {
  WriteLakeCsvs();
  serving::ShardingOptions options;
  options.num_shards = 3;
  DataLake lake = LoadLake();
  ASSERT_TRUE(serving::BuildShards(lake, options, Base("dep")).ok());
  auto manifest = serving::ShardManifest::Load(serving::ManifestPath(Base("dep")));
  ASSERT_TRUE(manifest.ok());

  // Untouched directory: everything fresh, nothing new.
  auto fresh = serving::CheckFreshness(*manifest, csv_dir_.string());
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_EQ(fresh->shards.size(), 3u);
  for (const serving::ShardFreshness& f : fresh->shards) {
    EXPECT_TRUE(f.fresh());
    EXPECT_GT(f.tables, 0u);
  }
  EXPECT_TRUE(fresh->new_files.empty());

  // Edit one file, delete another, add a third.
  Table s1 = testutil::FigureS1();
  ASSERT_TRUE(s1.AddRow({"New Surgery", "1 New St", "Leeds", "LS1 1AA", "500"}).ok());
  WriteCsv(s1);
  fs::remove(csv_dir_ / "filler_colors_0.csv");
  WriteCsv(testutil::FillerInventory(9));

  auto stale = serving::CheckFreshness(*manifest, csv_dir_.string());
  ASSERT_TRUE(stale.ok());
  size_t changed = 0, missing = 0;
  for (const serving::ShardFreshness& f : stale->shards) {
    changed += f.changed;
    missing += f.missing;
  }
  EXPECT_EQ(changed, 1u);
  EXPECT_EQ(missing, 1u);
  EXPECT_EQ(stale->new_files, std::vector<std::string>{"filler_inventory_9.csv"});
}

}  // namespace
}  // namespace d3l

#include "core/attribute_profile.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace d3l::core {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  ProfileTest() : cache_(&wem_) {}
  AttributeProfile Build(const Table& t, size_t col, ProfileOptions opts = {}) {
    return BuildProfile(t, col, wem_, &cache_, opts);
  }
  SubwordHashModel wem_;
  CachingEmbedder cache_;
};

TEST_F(ProfileTest, NameQGrams) {
  Table t = testutil::FigureS1();
  AttributeProfile p = Build(t, 1);  // "Address"
  EXPECT_TRUE(p.qset.count("addr"));
  EXPECT_TRUE(p.qset.count("ress"));
  EXPECT_EQ(p.column_name, "Address");
  EXPECT_EQ(p.table_name, "s1_gp_practices");
}

TEST_F(ProfileTest, TextualAttributeHasTsetRsetEmbedding) {
  Table t = testutil::FigureS1();
  AttributeProfile p = Build(t, 1);  // Address: "51 Botanic Av" etc.
  EXPECT_FALSE(p.is_numeric);
  EXPECT_FALSE(p.tset.empty());
  EXPECT_FALSE(p.rset.empty());
  EXPECT_TRUE(p.has_embedding);
  EXPECT_TRUE(p.numeric_sample.empty());
  EXPECT_EQ(p.extent_size, t.num_rows());
}

TEST_F(ProfileTest, NumericAttributeHasNoTsetOrEmbedding) {
  Table t = testutil::FigureS1();
  AttributeProfile p = Build(t, 4);  // Patients
  EXPECT_TRUE(p.is_numeric);
  EXPECT_TRUE(p.tset.empty());       // Section III-C
  EXPECT_FALSE(p.has_embedding);     // Section III-C
  EXPECT_FALSE(p.rset.empty());      // F stays (numbers have formats)
  EXPECT_FALSE(p.qset.empty());      // N stays
  ASSERT_EQ(p.numeric_sample.size(), t.num_rows());
  EXPECT_TRUE(std::is_sorted(p.numeric_sample.begin(), p.numeric_sample.end()));
}

TEST_F(ProfileTest, InformativeTokensExcludeFrequentOnes) {
  // Per Example 2: per part, only the least frequent word joins the tset.
  Table t = testutil::MakeTable(
      "addresses", {"Address"},
      {{"18 Portland Street"}, {"41 Oxford Street"}, {"9 Mirabel Street"}});
  AttributeProfile p = Build(t, 0);
  // "street" appears in every part: never the per-part minimum.
  EXPECT_EQ(p.tset.count("street"), 0u);
  // The distinctive words are informative.
  EXPECT_TRUE(p.tset.count("portland") || p.tset.count("18"));
  EXPECT_TRUE(p.tset.count("oxford") || p.tset.count("41"));
}

TEST_F(ProfileTest, FormatSetCapturesValueShape) {
  Table t = testutil::FigureS2();
  AttributeProfile p = Build(t, 2);  // Postcode
  // UK postcodes: alnum alnum, e.g. "M3 6AF" -> "A+".
  EXPECT_TRUE(p.rset.count("A+"));
}

TEST_F(ProfileTest, NullsAreSkipped) {
  Table t = testutil::MakeTable("with_nulls", {"X"}, {{"alpha"}, {""}, {"-"}, {"beta"}});
  AttributeProfile p = Build(t, 0);
  EXPECT_EQ(p.extent_size, 2u);
}

TEST_F(ProfileTest, EmptyColumnProfileIsSane) {
  Table t = testutil::MakeTable("empties", {"X"}, {{""}, {"-"}});
  AttributeProfile p = Build(t, 0);
  EXPECT_EQ(p.extent_size, 0u);
  EXPECT_TRUE(p.tset.empty());
  EXPECT_TRUE(p.rset.empty());
  EXPECT_FALSE(p.has_embedding);
  EXPECT_FALSE(p.qset.empty());  // the name still profiles
}

TEST_F(ProfileTest, MaxValuesCapSamplesExtent) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({"value " + std::to_string(i)});
  Table t = testutil::MakeTable("big", {"X"}, rows);
  ProfileOptions opts;
  opts.max_values = 10;
  AttributeProfile p = Build(t, 0, opts);
  EXPECT_EQ(p.extent_size, 10u);
}

TEST_F(ProfileTest, NumericSampleCapped) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 300; ++i) rows.push_back({std::to_string(i)});
  Table t = testutil::MakeTable("nums", {"N"}, rows);
  ProfileOptions opts;
  opts.max_numeric_sample = 50;
  AttributeProfile p = Build(t, 0, opts);
  EXPECT_EQ(p.numeric_sample.size(), 50u);
}

TEST_F(ProfileTest, DeterministicAcrossCalls) {
  Table t = testutil::FigureS1();
  AttributeProfile a = Build(t, 0);
  AttributeProfile b = Build(t, 0);
  EXPECT_EQ(a.tset, b.tset);
  EXPECT_EQ(a.rset, b.rset);
  EXPECT_EQ(a.qset, b.qset);
  EXPECT_EQ(a.embedding, b.embedding);
}

TEST_F(ProfileTest, MemoryUsagePositive) {
  Table t = testutil::FigureS1();
  EXPECT_GT(Build(t, 0).MemoryUsage(), sizeof(AttributeProfile));
}

}  // namespace
}  // namespace d3l::core

#include "baselines/yago_kb.h"

#include <gtest/gtest.h>

namespace d3l::baselines {
namespace {

TEST(YagoKbTest, DictionaryHitsReturnCuratedLeavesPlusClosure) {
  YagoKb::Dictionary dict;
  dict["manchester"] = {7};
  dict["salford"] = {7, 9};
  YagoKb kb(std::move(dict));
  auto m = kb.ClassesOf("manchester");
  // Leaves first, then hierarchy_depth supertypes per leaf.
  ASSERT_EQ(m.size(), 1u + kb.hierarchy_depth());
  EXPECT_EQ(m[0], 7u);
  auto s = kb.ClassesOf("salford");
  ASSERT_EQ(s.size(), 2u * (1u + kb.hierarchy_depth()));
  EXPECT_EQ(s[0], 7u);
  EXPECT_EQ(s[1], 9u);
  EXPECT_EQ(kb.dictionary_size(), 2u);
  // Same leaf => same supertype chain: the closures of class 7 agree.
  EXPECT_EQ(m[1], s[2]);
}

TEST(YagoKbTest, UnknownTokensGetPseudoClassesWithClosure) {
  YagoKb kb({});
  auto classes = kb.ClassesOf("zyxwv");
  ASSERT_EQ(classes.size(), 2u * (1 + kb.hierarchy_depth()));
  EXPECT_GE(classes[0], 1000u);
  EXPECT_GE(classes[1], 1000u);
  // Supertype ids live in a dedicated range.
  for (size_t i = 2; i < classes.size(); ++i) EXPECT_GE(classes[i], 0x40000000u);
  // Deterministic.
  EXPECT_EQ(kb.ClassesOf("zyxwv"), classes);
}

TEST(YagoKbTest, SharedPrefixSharesOneClass) {
  YagoKb kb({});
  auto a = kb.ClassesOf("manchester");
  auto b = kb.ClassesOf("manchestr");  // same 4-prefix "manc"
  EXPECT_EQ(a[1], b[1]);  // prefix class matches
  EXPECT_NE(a[0], b[0]);  // whole-token class differs
}

TEST(YagoKbTest, LookupCounterInstrumentsAccesses) {
  YagoKb kb({});
  EXPECT_EQ(kb.lookup_count(), 0u);
  kb.ClassesOf("a");
  kb.ClassesOf("b");
  EXPECT_EQ(kb.lookup_count(), 2u);
}

TEST(YagoKbTest, ZeroFallbackBucketsClamped) {
  YagoKb kb({}, 0);
  // No division by zero; two leaves plus their closures.
  EXPECT_EQ(kb.ClassesOf("x").size(), 2u * (1 + kb.hierarchy_depth()));
}

}  // namespace
}  // namespace d3l::baselines

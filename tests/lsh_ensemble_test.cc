#include "lsh/lsh_ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace d3l {
namespace {

std::set<std::string> RangeSet(int lo, int hi, const char* prefix = "e") {
  std::set<std::string> s;
  for (int i = lo; i < hi; ++i) s.insert(std::string(prefix) + std::to_string(i));
  return s;
}

TEST(ContainmentMathTest, FromJaccard) {
  // Q of size 10 fully inside X of size 90: j = 10/90, c = 1.
  EXPECT_NEAR(ContainmentFromJaccard(10.0 / 90.0, 10, 90), 1.0, 1e-9);
  // Disjoint: c = 0.
  EXPECT_DOUBLE_EQ(ContainmentFromJaccard(0, 10, 90), 0.0);
  // Identical sets: j = 1, c = 1.
  EXPECT_NEAR(ContainmentFromJaccard(1.0, 50, 50), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(ContainmentFromJaccard(0.5, 0, 10), 0.0);
}

class LshEnsembleTest : public ::testing::Test {
 protected:
  LshEnsembleTest() : hasher_(256, 17) {}

  void InsertSet(uint32_t id, const std::set<std::string>& s) {
    ensemble_.Insert(id, hasher_.Sign(s), s.size());
  }

  MinHasher hasher_;
  LshEnsemble ensemble_;
};

TEST_F(LshEnsembleTest, FindsSmallSetContainedInLargeSet) {
  // The skew case plain Jaccard banding misses: a 30-element query fully
  // contained in a 600-element set has Jaccard 0.05 but containment 1.0.
  auto query = RangeSet(0, 30);
  auto big = RangeSet(0, 600);
  InsertSet(1, big);
  for (uint32_t i = 2; i < 40; ++i) {
    InsertSet(i, RangeSet(1000 * static_cast<int>(i), 1000 * static_cast<int>(i) + 50));
  }
  ensemble_.Index();

  auto hits = ensemble_.QueryContainment(hasher_.Sign(query), query.size(), 0.7);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 1u), hits.end())
      << "contained superset not retrieved";
  // Unrelated sets must not pass the containment filter.
  for (uint32_t id : hits) {
    EXPECT_TRUE(id == 1u) << "spurious hit " << id;
  }
}

TEST_F(LshEnsembleTest, ThresholdFiltersPartialContainment) {
  auto query = RangeSet(0, 100);
  InsertSet(1, RangeSet(0, 80, "e"));    // 80% of query (plus nothing else)
  InsertSet(2, RangeSet(0, 30, "e"));    // 30% of query
  for (uint32_t i = 3; i < 20; ++i) {
    InsertSet(i, RangeSet(5000 + 100 * static_cast<int>(i),
                          5000 + 100 * static_cast<int>(i) + 60));
  }
  ensemble_.Index();
  Signature qs = hasher_.Sign(query);

  auto strict = ensemble_.QueryContainment(qs, query.size(), 0.7);
  EXPECT_NE(std::find(strict.begin(), strict.end(), 1u), strict.end());
  EXPECT_EQ(std::find(strict.begin(), strict.end(), 2u), strict.end());

  auto loose = ensemble_.QueryContainment(qs, query.size(), 0.2);
  EXPECT_NE(std::find(loose.begin(), loose.end(), 2u), loose.end());
}

TEST_F(LshEnsembleTest, PartitionsCoverSkewedSizes) {
  for (uint32_t i = 0; i < 64; ++i) {
    // Sizes from 10 to 640 — heavy skew.
    InsertSet(i, RangeSet(10000 + 1000 * static_cast<int>(i),
                          10000 + 1000 * static_cast<int>(i) + 10 * (static_cast<int>(i) + 1)));
  }
  ensemble_.Index();
  EXPECT_GT(ensemble_.num_partitions(), 1u);
  EXPECT_LE(ensemble_.num_partitions(), 8u);
  EXPECT_EQ(ensemble_.size(), 64u);
  EXPECT_GT(ensemble_.MemoryUsage(), 0u);
}

TEST_F(LshEnsembleTest, EmptyQueryAndEmptyIndex) {
  ensemble_.Index();
  auto hits = ensemble_.QueryContainment(hasher_.Sign(RangeSet(0, 10)), 10, 0.5);
  EXPECT_TRUE(hits.empty());
  LshEnsemble other;
  other.Insert(1, hasher_.Sign(RangeSet(0, 10)), 10);
  other.Index();
  EXPECT_TRUE(other.QueryContainment(hasher_.Sign(RangeSet(0, 10)), 0, 0.5).empty());
}

TEST_F(LshEnsembleTest, EstimateContainmentTracksTruth) {
  auto query = RangeSet(0, 50);
  InsertSet(7, RangeSet(0, 200));  // contains the query entirely
  ensemble_.Index();
  double c = ensemble_.EstimateContainment(hasher_.Sign(query), query.size(), 7);
  EXPECT_GT(c, 0.8);
  EXPECT_DOUBLE_EQ(
      ensemble_.EstimateContainment(hasher_.Sign(query), query.size(), 99), 0.0);
}

// Property sweep: true containment level vs retrieval at threshold 0.6.
class EnsembleContainmentSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnsembleContainmentSweep, RetrievalMatchesContainmentLevel) {
  int contained = GetParam();  // elements of the 60-element query inside X
  MinHasher hasher(256, 23);
  LshEnsemble ensemble;
  auto query = RangeSet(0, 60);
  // X: `contained` query elements plus 400 others (skewed large set).
  std::set<std::string> x = RangeSet(0, contained);
  for (int i = 0; i < 400; ++i) x.insert("pad" + std::to_string(i));
  ensemble.Insert(1, hasher.Sign(x), x.size());
  for (uint32_t i = 2; i < 30; ++i) {
    ensemble.Insert(i, hasher.Sign(RangeSet(9000 + 300 * static_cast<int>(i),
                                            9000 + 300 * static_cast<int>(i) + 100)),
                    100);
  }
  ensemble.Index();
  auto hits = ensemble.QueryContainment(hasher.Sign(query), query.size(), 0.6);
  bool found = std::find(hits.begin(), hits.end(), 1u) != hits.end();
  double true_containment = static_cast<double>(contained) / 60.0;
  if (true_containment >= 0.85) {
    EXPECT_TRUE(found) << "containment " << true_containment;
  } else if (true_containment <= 0.3) {
    EXPECT_FALSE(found) << "containment " << true_containment;
  }
  // Mid-range (0.3-0.85) is the estimator's noise band; nothing asserted.
}

INSTANTIATE_TEST_SUITE_P(Levels, EnsembleContainmentSweep,
                         ::testing::Values(6, 18, 36, 54, 60));

}  // namespace
}  // namespace d3l

#include "core/join_graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace d3l::core {
namespace {

class JoinGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake_ = testutil::FigureLake(4);
    engine_ = std::make_unique<D3LEngine>();
    ASSERT_TRUE(engine_->IndexLake(lake_).ok());
    graph_ = std::make_unique<SaJoinGraph>(SaJoinGraph::Build(*engine_));
  }

  uint32_t IndexOf(const std::string& name) {
    int i = lake_.TableIndex(name);
    EXPECT_GE(i, 0) << name;
    return static_cast<uint32_t>(i);
  }

  DataLake lake_;
  std::unique_ptr<D3LEngine> engine_;
  std::unique_ptr<SaJoinGraph> graph_;
};

TEST_F(JoinGraphTest, GpTablesAreJoinable) {
  // S1, S2 and S3 share practice names through their subject attributes.
  uint32_t s1 = IndexOf("s1_gp_practices");
  uint32_t s2 = IndexOf("s2_gp_funding");
  uint32_t s3 = IndexOf("s3_local_gps");
  EXPECT_TRUE(graph_->HasEdge(s1, s2) || graph_->HasEdge(s2, s1));
  EXPECT_TRUE(graph_->HasEdge(s1, s3) || graph_->HasEdge(s3, s1));
  EXPECT_GT(graph_->num_edges(), 0u);
}

TEST_F(JoinGraphTest, FillersNotJoinedToGpTables) {
  uint32_t s1 = IndexOf("s1_gp_practices");
  for (uint32_t t = 0; t < lake_.size(); ++t) {
    if (lake_.table(t).name().rfind("filler_", 0) == 0) {
      EXPECT_FALSE(graph_->HasEdge(s1, t)) << lake_.table(t).name();
    }
  }
}

TEST_F(JoinGraphTest, EdgesAreSymmetricAndCarryOverlap) {
  for (uint32_t t = 0; t < graph_->num_tables(); ++t) {
    for (const JoinEdge& e : graph_->neighbours(t)) {
      EXPECT_EQ(e.from_table, t);
      EXPECT_NE(e.to_table, t) << "self-edge";
      EXPECT_GE(e.overlap_estimate, 0.0);
      EXPECT_LE(e.overlap_estimate, 1.0);
      EXPECT_TRUE(graph_->HasEdge(e.to_table, e.from_table));
    }
  }
}

TEST_F(JoinGraphTest, Algorithm3PathConditions) {
  uint32_t s2 = IndexOf("s2_gp_funding");
  uint32_t s3 = IndexOf("s3_local_gps");

  std::unordered_set<uint32_t> top_k = {IndexOf("s1_gp_practices"), s2};
  std::unordered_set<uint32_t> related;
  for (uint32_t t = 0; t < lake_.size(); ++t) related.insert(t);

  auto paths = FindJoinPaths(*graph_, s2, top_k, related);
  ASSERT_FALSE(paths.empty());
  for (const JoinPath& p : paths) {
    EXPECT_EQ(p.tables[0], s2);                      // starts at the top-k table
    EXPECT_EQ(p.edges.size(), p.tables.size() - 1);  // consistent edges
    std::unordered_set<uint32_t> seen;
    for (size_t i = 0; i < p.tables.size(); ++i) {
      EXPECT_TRUE(seen.insert(p.tables[i]).second) << "cyclic path";
      if (i > 0) {
        EXPECT_EQ(top_k.count(p.tables[i]), 0u) << "path re-enters top-k";
        EXPECT_EQ(related.count(p.tables[i]), 1u);
      }
    }
  }
  // S3 is reachable from S2 (shared GP names) and not in the top-k.
  bool found_s3 = false;
  for (const JoinPath& p : paths) {
    for (uint32_t t : p.tables) {
      if (t == s3) found_s3 = true;
    }
  }
  EXPECT_TRUE(found_s3);
}

TEST_F(JoinGraphTest, UnrelatedTablesExcludedFromPaths) {
  uint32_t s2 = IndexOf("s2_gp_funding");
  std::unordered_set<uint32_t> top_k = {s2};
  std::unordered_set<uint32_t> related = {s2};  // nothing else related
  auto paths = FindJoinPaths(*graph_, s2, top_k, related);
  EXPECT_TRUE(paths.empty());
}

TEST_F(JoinGraphTest, MaxPathLengthRespected) {
  uint32_t s1 = IndexOf("s1_gp_practices");
  std::unordered_set<uint32_t> top_k = {s1};
  std::unordered_set<uint32_t> related;
  for (uint32_t t = 0; t < lake_.size(); ++t) related.insert(t);
  JoinGraphOptions opts;
  opts.max_path_length = 2;
  auto paths = FindJoinPaths(*graph_, s1, top_k, related, opts);
  for (const JoinPath& p : paths) {
    EXPECT_LE(p.tables.size(), 2u);
  }
}

TEST_F(JoinGraphTest, FindAllJoinPathsUsesSearchResult) {
  auto res = engine_->Search(testutil::FigureTarget(), 2);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->ranked.size(), 2u);
  // The three GP tables are mutually joinable; whichever one missed the
  // top-2 must be reachable from the top-2 through a join path.
  std::unordered_set<uint32_t> top;
  for (const auto& m : res->ranked) top.insert(m.table_index);
  std::vector<uint32_t> gp = {IndexOf("s1_gp_practices"), IndexOf("s2_gp_funding"),
                              IndexOf("s3_local_gps")};
  uint32_t missing = UINT32_MAX;
  for (uint32_t t : gp) {
    if (top.count(t) == 0) missing = t;
  }
  ASSERT_NE(missing, UINT32_MAX) << "all GP tables in top-2 of size 2?";

  auto paths = FindAllJoinPaths(*graph_, *res);
  bool reached = false;
  for (const JoinPath& p : paths) {
    for (size_t i = 1; i < p.tables.size(); ++i) {
      if (p.tables[i] == missing) reached = true;
    }
  }
  EXPECT_TRUE(reached);
}

TEST_F(JoinGraphTest, EmptyGraphForEmptyEngine) {
  D3LEngine fresh;
  SaJoinGraph g = SaJoinGraph::Build(fresh);
  EXPECT_EQ(g.num_tables(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace d3l::core

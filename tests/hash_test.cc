#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace d3l {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString("hello", 1), HashString("hello", 2));
}

TEST(HashTest, EmptyInputIsStable) {
  EXPECT_EQ(HashString(""), HashString(""));
  EXPECT_NE(HashString("", 1), HashString("", 2));
}

TEST(HashTest, Mix64IsBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashFamilyTest, FunctionsAreIndependent) {
  HashFamily family(16, 99);
  EXPECT_EQ(family.size(), 16u);
  uint64_t key = HashString("value");
  std::set<uint64_t> values;
  for (size_t i = 0; i < family.size(); ++i) {
    values.insert(family.Apply(i, key));
  }
  EXPECT_EQ(values.size(), 16u);  // all functions map the key differently
  // Same seed -> same family.
  HashFamily family2(16, 99);
  for (size_t i = 0; i < family.size(); ++i) {
    EXPECT_EQ(family.Apply(i, key), family2.Apply(i, key));
  }
}

TEST(GaussianFromKeyTest, RoughlyStandardNormal) {
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = GaussianFromKey(static_cast<uint64_t>(i) * 2654435761ULL);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, DeterministicAndUniform) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(123);
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    buckets[r.Uniform(10)]++;
  }
  for (int c : buckets) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng r(9);
  auto idx = r.SampleIndices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 30u);
  // Clamped when k > n.
  auto all = r.SampleIndices(5, 50);
  EXPECT_EQ(all.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng r(31);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = r.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.04);
}

}  // namespace
}  // namespace d3l

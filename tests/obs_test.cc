// Unit tests for the observability substrate (src/obs): metric instruments
// and registry semantics, snapshot merging, Prometheus exposition, the
// trace span tree with its thread and process propagation primitives, and
// the log record format.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <regex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace d3l::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddRead) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-20);
  EXPECT_EQ(g.Value(), -13);  // gauges are signed levels
}

TEST(HistogramTest, BucketIndexBoundsConsistent) {
  // Every in-range sample must land in the bucket whose bounds bracket it:
  // upper_bound(index - 1) <= v < upper_bound(index).
  const double values[] = {1e-8, 0.001, 0.5,  0.51, 1.0, 1.24,
                           1.25, 3.7,   42.0, 1e3,  1e9};
  for (double v : values) {
    const int index = Histogram::BucketIndex(v);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, Histogram::kNumBuckets);
    EXPECT_LT(v, Histogram::BucketUpperBound(index)) << v;
    if (index > 0) {
      EXPECT_GE(v, Histogram::BucketUpperBound(index - 1)) << v;
    }
    // Log-bucketing resolution contract: the bound overestimates v by at
    // most the 25% bucket width.
    EXPECT_LE(Histogram::BucketUpperBound(index), v * 1.25 * 1.0000001) << v;
  }
}

TEST(HistogramTest, RecordCountsSumAndBuckets) {
  Histogram h;
  h.Record(1.0);
  h.Record(1.0);
  h.Record(8.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 10.0);
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(1.0)), 2u);
  EXPECT_EQ(h.BucketCount(Histogram::BucketIndex(8.0)), 1u);
}

TEST(HistogramTest, DegenerateSamplesClampWithoutPoisoningSum) {
  Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.Count(), 3u);  // counted...
  EXPECT_EQ(h.Sum(), 0.0);   // ...but contribute nothing to the sum
  EXPECT_EQ(h.BucketCount(0), 3u);
  // Out-of-range magnitudes clamp to the edge buckets.
  h.Record(1e300);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 1u);
  h.Record(1e-300);
  EXPECT_EQ(h.BucketCount(0), 4u);
}

TEST(HistogramTest, QuantilesOverestimateByAtMostOneBucket) {
  MetricRegistry registry;
  auto h = registry.AddHistogram("q_seconds");
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.count, 1000u);
  const double p50 = hs.Quantile(0.5);
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 500.0 * 1.25);
  const double p99 = hs.Quantile(0.99);
  EXPECT_GE(p99, 990.0);
  EXPECT_LE(p99, 990.0 * 1.25);
  EXPECT_EQ(hs.Quantile(0.0), hs.Quantile(1e-9));  // lowest bucket
  EXPECT_GE(hs.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  HistogramSnapshot hs;
  EXPECT_EQ(hs.Quantile(0.5), 0.0);
}

TEST(RegistryTest, SameIdentityInstrumentsFoldIntoOneSeries) {
  MetricRegistry registry;
  auto a = registry.AddCounter("d3l_cache_hits_total", {{"cache", "x"}});
  auto b = registry.AddCounter("d3l_cache_hits_total", {{"cache", "x"}});
  a->Increment(2);
  b->Increment(3);
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);  // merged, not duplicated
  EXPECT_EQ(snap.counters[0].value, 5u);
  // Each instrument still answers its own reads exactly — the component
  // Stats() contract.
  EXPECT_EQ(a->Value(), 2u);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(RegistryTest, LabelSetsSeparateSeries) {
  MetricRegistry registry;
  auto a = registry.AddCounter("reqs_total", {{"method", "SRCH"}});
  auto b = registry.AddCounter("reqs_total", {{"method", "PROF"}});
  a->Increment(1);
  b->Increment(2);
  const std::string text = registry.ExportText();
  EXPECT_NE(text.find("reqs_total{method=\"SRCH\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("reqs_total{method=\"PROF\"} 2"), std::string::npos)
      << text;
}

TEST(RegistryTest, LabelsCanonicalizeByKey) {
  MetricRegistry registry;
  auto a = registry.AddCounter("t_total", {{"b", "2"}, {"a", "1"}});
  auto b = registry.AddCounter("t_total", {{"a", "1"}, {"b", "2"}});
  a->Increment(1);
  b->Increment(1);
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);  // same identity despite order
  EXPECT_EQ(snap.counters[0].value, 2u);
}

TEST(RegistryTest, DeadInstrumentsDropFromSnapshots) {
  MetricRegistry registry;
  auto keep = registry.AddCounter("keep_total");
  {
    auto die = registry.AddCounter("die_total");
    die->Increment(7);
    EXPECT_EQ(registry.Snapshot().counters.size(), 2u);
  }
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].info.name, "keep_total");
}

RegistrySnapshot MakeSnapshot(uint64_t c, int64_t g, double sample) {
  MetricRegistry registry;
  auto counter = registry.AddCounter("m_total");
  auto gauge = registry.AddGauge("m_depth");
  auto histogram = registry.AddHistogram("m_seconds");
  counter->Increment(c);
  gauge->Set(g);
  histogram->Record(sample);
  return registry.Snapshot();
}

TEST(SnapshotTest, MergeIsAssociative) {
  // (A + B) + C must equal A + (B + C) — the property that lets per-process
  // snapshots aggregate across a fleet in any order.
  const RegistrySnapshot a = MakeSnapshot(1, 10, 0.5);
  const RegistrySnapshot b = MakeSnapshot(2, 20, 0.5);
  const RegistrySnapshot c = MakeSnapshot(4, 40, 8.0);

  RegistrySnapshot left = a;
  left.Merge(b);
  left.Merge(c);
  RegistrySnapshot bc = b;
  bc.Merge(c);
  RegistrySnapshot right = a;
  right.Merge(bc);

  EXPECT_EQ(left.ExportText(), right.ExportText());
  ASSERT_EQ(left.counters.size(), 1u);
  EXPECT_EQ(left.counters[0].value, 7u);
  ASSERT_EQ(left.histograms.size(), 1u);
  EXPECT_EQ(left.histograms[0].count, 3u);
  EXPECT_DOUBLE_EQ(left.histograms[0].sum, 9.0);
  ASSERT_EQ(left.histograms[0].buckets.size(), 2u);  // bucket-wise add
  EXPECT_EQ(left.histograms[0].buckets[0].second, 2u);
}

TEST(SnapshotTest, ExportTextGolden) {
  MetricRegistry registry;
  auto gauge = registry.AddGauge("d3l_test_depth", {}, "Depth");
  auto counter =
      registry.AddCounter("d3l_test_requests_total", {{"method", "SRCH"}},
                          "Requests");
  auto histogram = registry.AddHistogram("d3l_test_seconds", {}, "Latency");
  gauge->Set(5);
  counter->Increment(3);
  histogram->Record(1.0);  // bucket upper bound 1.25
  EXPECT_EQ(registry.ExportText(),
            "# HELP d3l_test_depth Depth\n"
            "# TYPE d3l_test_depth gauge\n"
            "d3l_test_depth 5\n"
            "# HELP d3l_test_requests_total Requests\n"
            "# TYPE d3l_test_requests_total counter\n"
            "d3l_test_requests_total{method=\"SRCH\"} 3\n"
            "# HELP d3l_test_seconds Latency\n"
            "# TYPE d3l_test_seconds histogram\n"
            "d3l_test_seconds_bucket{le=\"1.25\"} 1\n"
            "d3l_test_seconds_bucket{le=\"+Inf\"} 1\n"
            "d3l_test_seconds_sum 1\n"
            "d3l_test_seconds_count 1\n");
}

TEST(SnapshotTest, ExportEscapesLabelValues) {
  MetricRegistry registry;
  auto c = registry.AddCounter("esc_total", {{"path", "a\"b\\c\nd"}});
  c->Increment(1);
  EXPECT_NE(registry.ExportText().find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << registry.ExportText();
}

TEST(RegistryTest, ConcurrentHammerKeepsTotalsExact) {
  // 8 writer threads on shared instruments, with snapshots taken mid-flight
  // — the TSan CI job turns any missing synchronization into a failure.
  MetricRegistry registry;
  auto counter = registry.AddCounter("hammer_total");
  auto gauge = registry.AddGauge("hammer_depth");
  auto histogram = registry.AddHistogram("hammer_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1);
        histogram->Record(static_cast<double>((i % 16) + 1));
        if (i % 4096 == 0) (void)registry.Snapshot();
      }
      gauge->Add(-kPerThread);
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(counter->Value(), kTotal);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), kTotal);
  // Each thread records 625 of each value 1..16.
  const double per_thread = (16.0 * 17.0 / 2.0) * (kPerThread / 16);
  EXPECT_DOUBLE_EQ(histogram->Sum(), per_thread * kThreads);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += histogram->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kTotal);
}

// ---------------------------------------------------------------- tracing

TEST(TraceTest, NewTraceIdsAreNonZeroAndDistinct) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceTest, ScopedSpanIsNoOpWithoutCurrentTrace) {
  EXPECT_FALSE(CurrentTrace());
  ScopedSpan span("orphan");
  EXPECT_EQ(span.index(), -1);
  EXPECT_EQ(span.context(), nullptr);
  EXPECT_FALSE(CurrentTrace());
}

TEST(TraceTest, ScopedSpansNestIntoATree) {
  auto context = std::make_shared<TraceContext>();
  {
    ScopedSpan outer(context, "outer");
    EXPECT_EQ(outer.index(), 0);
    EXPECT_TRUE(CurrentTrace());
    ScopedSpan inner("inner");  // parents under outer via the TLS cursor
    EXPECT_EQ(inner.index(), 1);
  }
  EXPECT_FALSE(CurrentTrace());  // scope restored on destruction
  const Trace trace = context->Snapshot();
  EXPECT_EQ(trace.trace_id, context->trace_id());
  ASSERT_EQ(trace.roots.size(), 1u);
  EXPECT_EQ(trace.roots[0].name, "outer");
  ASSERT_EQ(trace.roots[0].children.size(), 1u);
  EXPECT_EQ(trace.roots[0].children[0].name, "inner");
  EXPECT_GE(trace.roots[0].duration_ns, trace.roots[0].children[0].duration_ns);
}

TEST(TraceTest, RetrospectiveSpanUsesExplicitEpoch) {
  const auto epoch =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(10);
  TraceContext context(77, epoch);
  EXPECT_EQ(context.trace_id(), 77u);
  EXPECT_GE(context.NowNs(), 10u * 1000 * 1000);  // epoch lies in the past
  context.AddSpan("queue", -1, 0, 5 * 1000 * 1000);
  const Trace trace = context.Snapshot();
  ASSERT_EQ(trace.roots.size(), 1u);
  EXPECT_EQ(trace.roots[0].name, "queue");
  EXPECT_EQ(trace.roots[0].start_ns, 0u);
  EXPECT_EQ(trace.roots[0].duration_ns, 5u * 1000 * 1000);
}

TEST(TraceTest, AttachStitchesForeignSubtrees) {
  TraceContext context(42);
  const int root = context.AddSpan("rpc:SRCH", -1, 0, 100);
  Span server;
  server.name = "serve:SRCH";
  server.children.push_back({"engine:search", 10, 80, {}});
  context.Attach(root, std::move(server));
  // A second subtree with no anchor becomes a root of its own.
  context.Attach(-1, Span{"orphan", 0, 1, {}});
  const Trace trace = context.Snapshot();
  ASSERT_EQ(trace.roots.size(), 2u);
  ASSERT_EQ(trace.roots[0].children.size(), 1u);
  EXPECT_EQ(trace.roots[0].children[0].name, "serve:SRCH");
  ASSERT_EQ(trace.roots[0].children[0].children.size(), 1u);
  EXPECT_EQ(trace.roots[0].children[0].children[0].name, "engine:search");
  EXPECT_EQ(trace.roots[1].name, "orphan");
}

TEST(TraceTest, TraceScopePropagatesAcrossThreads) {
  auto context = std::make_shared<TraceContext>();
  {
    ScopedSpan dispatch(context, "dispatch");
    const TraceHandle handle = CurrentTrace();  // capture before the hop
    std::thread worker([handle] {
      EXPECT_FALSE(CurrentTrace());  // fresh thread starts untraced
      TraceScope scope(handle);
      ScopedSpan span("worker");
      EXPECT_GE(span.index(), 0);
    });
    worker.join();
  }
  const Trace trace = context->Snapshot();
  ASSERT_EQ(trace.roots.size(), 1u);
  ASSERT_EQ(trace.roots[0].children.size(), 1u);
  EXPECT_EQ(trace.roots[0].children[0].name, "worker");
}

TEST(TraceTest, SpanCapDegradesToDroppedSpans) {
  TraceContext context(1);
  for (size_t i = 0; i < TraceContext::kMaxSpans + 10; ++i) {
    context.AddSpan("s", -1, 0, 1);
  }
  EXPECT_EQ(context.span_count(), TraceContext::kMaxSpans);
  EXPECT_EQ(context.StartSpan("over", -1), -1);
  context.EndSpan(-1);  // harmless by contract
}

TEST(TraceTest, FormatTraceRendersIdAndTree) {
  TraceContext context(0xABCDu);
  const int root = context.AddSpan("execute", -1, 0, 2000000);
  context.AddSpan("search", root, 500, 1000000);
  const std::string text = FormatTrace(context.Snapshot());
  EXPECT_NE(text.find("000000000000abcd"), std::string::npos) << text;
  EXPECT_NE(text.find("execute"), std::string::npos) << text;
  EXPECT_NE(text.find("search"), std::string::npos) << text;
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, FormatLogRecordPinsThePrefixShape) {
  const std::string line =
      internal::FormatLogRecord(LogLevel::kWarning, "hello");
  const std::regex shape(
      "\\[[0-9]{4}-[0-9]{2}-[0-9]{2}T[0-9]{2}:[0-9]{2}:"
      "[0-9]{2}\\.[0-9]{3}Z\\] \\[WARN\\] \\[tid [0-9]+\\] hello\n");
  EXPECT_TRUE(std::regex_match(line, shape)) << line;
  // Same thread, same dense tid.
  const std::string again =
      internal::FormatLogRecord(LogLevel::kError, "again");
  const auto tid_at = [](const std::string& s) {
    const size_t at = s.find("[tid ");
    return s.substr(at, s.find(']', at) - at);
  };
  EXPECT_EQ(tid_at(line), tid_at(again));
  EXPECT_NE(again.find("[ERROR]"), std::string::npos);
}

}  // namespace
}  // namespace d3l::obs

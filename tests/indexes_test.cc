#include "core/indexes.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace d3l::core {
namespace {

class IndexesTest : public ::testing::Test {
 protected:
  IndexesTest() : indexes_(IndexOptions{}), cache_(&wem_) {}

  uint32_t InsertColumn(const Table& t, size_t col, uint32_t table_id) {
    AttributeProfile p = BuildProfile(t, col, wem_, &cache_);
    p.ref = AttributeRef{table_id, static_cast<uint32_t>(col)};
    return indexes_.Insert(std::move(p));
  }

  void InsertTable(const Table& t, uint32_t table_id) {
    for (size_t c = 0; c < t.num_columns(); ++c) InsertColumn(t, c, table_id);
  }

  AttributeSignatures SignColumn(const Table& t, size_t col) {
    return indexes_.Sign(BuildProfile(t, col, wem_, &cache_));
  }

  SubwordHashModel wem_;
  D3LIndexes indexes_;
  CachingEmbedder cache_;
};

TEST_F(IndexesTest, InsertAssignsSequentialIds) {
  Table s1 = testutil::FigureS1();
  EXPECT_EQ(InsertColumn(s1, 0, 0), 0u);
  EXPECT_EQ(InsertColumn(s1, 1, 0), 1u);
  EXPECT_EQ(indexes_.num_attributes(), 2u);
  EXPECT_EQ(indexes_.profile(1).column_name, "Address");
}

TEST_F(IndexesTest, NumericAttributesSkipValueAndEmbeddingIndexes) {
  Table s1 = testutil::FigureS1();
  uint32_t id = InsertColumn(s1, 4, 0);  // Patients
  const AttributeSignatures& s = indexes_.signatures(id);
  EXPECT_FALSE(s.has_value);
  EXPECT_FALSE(s.has_embedding);
  EXPECT_FALSE(s.name_sig.empty());
  EXPECT_FALSE(s.format_sig.empty());
}

TEST_F(IndexesTest, LookupFindsIdenticalAttribute) {
  Table s1 = testutil::FigureS1();
  Table s2 = testutil::FigureS2();
  InsertTable(s1, 0);
  InsertTable(s2, 1);
  indexes_.Finalize();

  // The target's "Postcode" should retrieve both postcode columns by name.
  Table target = testutil::FigureTarget();
  AttributeSignatures q = SignColumn(target, 3);
  auto hits = indexes_.Lookup(Evidence::kName, q, 10);
  bool found_s1_pc = false;
  bool found_s2_pc = false;
  for (uint32_t id : hits) {
    const auto& p = indexes_.profile(id);
    if (p.column_name == "Postcode" && p.ref.table == 0) found_s1_pc = true;
    if (p.column_name == "Postcode" && p.ref.table == 1) found_s2_pc = true;
  }
  EXPECT_TRUE(found_s1_pc);
  EXPECT_TRUE(found_s2_pc);
}

TEST_F(IndexesTest, ValueLookupFindsSharedExtents) {
  Table s2 = testutil::FigureS2();
  InsertTable(s2, 0);
  indexes_.Finalize();
  Table target = testutil::FigureTarget();
  AttributeSignatures q = SignColumn(target, 0);  // Practice names overlap
  auto hits = indexes_.Lookup(Evidence::kValue, q, 10);
  bool found_practice = false;
  for (uint32_t id : hits) {
    if (indexes_.profile(id).column_name == "Practice") found_practice = true;
  }
  EXPECT_TRUE(found_practice);
}

TEST_F(IndexesTest, DistanceEstimatesOrderRelatedness) {
  Table s1 = testutil::FigureS1();
  Table s2 = testutil::FigureS2();
  InsertTable(s1, 0);   // ids 0..4
  InsertTable(s2, 1);   // ids 5..8
  indexes_.Finalize();

  Table target = testutil::FigureTarget();
  AttributeSignatures q = SignColumn(target, 2);  // City

  // Find ids of S2.City (7) and S2.Payment (8) via profiles.
  uint32_t city_id = UINT32_MAX;
  uint32_t payment_id = UINT32_MAX;
  for (uint32_t i = 0; i < indexes_.num_attributes(); ++i) {
    if (indexes_.profile(i).column_name == "City" && indexes_.profile(i).ref.table == 1) {
      city_id = i;
    }
    if (indexes_.profile(i).column_name == "Payment") payment_id = i;
  }
  ASSERT_NE(city_id, UINT32_MAX);
  ASSERT_NE(payment_id, UINT32_MAX);

  double d_city = indexes_.EstimateDistance(Evidence::kValue, q, city_id);
  double d_payment = indexes_.EstimateDistance(Evidence::kValue, q, payment_id);
  EXPECT_LT(d_city, 0.7);           // shared city values
  EXPECT_DOUBLE_EQ(d_payment, 1.0);  // numeric: no V evidence
  EXPECT_LT(indexes_.EstimateDistance(Evidence::kName, q, city_id), 0.05);
}

TEST_F(IndexesTest, ThresholdLookupIsSelective) {
  Table s1 = testutil::FigureS1();
  Table filler = testutil::FillerColors(1);
  InsertTable(s1, 0);
  InsertTable(filler, 1);
  indexes_.Finalize();

  Table target = testutil::FigureTarget();
  AttributeSignatures q = SignColumn(target, 3);  // Postcode
  auto hits = indexes_.LookupThreshold(Evidence::kName, q);
  for (uint32_t id : hits) {
    // No filler column should name-collide with "Postcode" at tau=0.7.
    EXPECT_EQ(indexes_.profile(id).ref.table, 0u);
  }
}

TEST_F(IndexesTest, DistributionDistanceNotServedFromIndexes) {
  Table s1 = testutil::FigureS1();
  uint32_t id = InsertColumn(s1, 4, 0);
  indexes_.Finalize();
  AttributeSignatures q = SignColumn(testutil::FigureTarget(), 0);
  EXPECT_DOUBLE_EQ(indexes_.EstimateDistance(Evidence::kDistribution, q, id), 1.0);
  EXPECT_TRUE(indexes_.Lookup(Evidence::kDistribution, q, 10).empty());
}

TEST_F(IndexesTest, MemoryUsageGrowsWithInsertions) {
  size_t before = indexes_.MemoryUsage();
  InsertTable(testutil::FigureS1(), 0);
  EXPECT_GT(indexes_.MemoryUsage(), before);
}

}  // namespace
}  // namespace d3l::core

#include "common/status.h"

#include <gtest/gtest.h>

namespace d3l {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad q");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad q");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad q");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("missing table");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing table");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());
  // Copy assignment back onto an error.
  Status target = Status::Internal("other");
  target = copy;
  EXPECT_TRUE(target.IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  D3L_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

// The numeric values are a WIRE CONTRACT: rpc/wire.cc ships them between
// processes that may run different builds, so they are frozen. Reordering
// the enum would make an old server's InvalidArgument decode as something
// else on a new client — these assertions turn that mistake into a test
// failure instead of a protocol bug.
TEST(StatusCodeTest, NumericValuesAreStable) {
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kOk), 0u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kInvalidArgument), 1u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kIOError), 2u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kNotFound), 3u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kAlreadyExists), 4u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kOutOfRange), 5u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kInternal), 6u);
  EXPECT_EQ(static_cast<uint32_t>(StatusCode::kUnavailable), 7u);
}

TEST(StatusCodeTest, FromWireRoundTripsKnownCodesAndRejectsUnknown) {
  for (uint32_t c = 0; c <= 7; ++c) {
    EXPECT_EQ(static_cast<uint32_t>(StatusCodeFromWire(c)), c);
  }
  // A code minted by a newer peer degrades to Internal, never to OK.
  EXPECT_EQ(StatusCodeFromWire(8), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromWire(0xFFFFFFFFu), StatusCode::kInternal);
}

// Status and Result<T> are class-level [[nodiscard]] and the build runs with
// -Werror=unused-result, so a bare `MakeStatus();` statement does not compile
// (tests/nodiscard_fail.cc + the status_nodiscard_negative ctest prove that
// from the outside). D3L_IGNORE_STATUS is the one sanctioned escape hatch:
// it must compile, actually evaluate its argument exactly once, and demand a
// non-empty rationale (the empty-rationale form is a static_assert failure,
// which cannot be shown in a runtime test — see the negative-compile file).
TEST(StatusTest, IgnoreStatusMacroDiscardsExplicitly) {
  int calls = 0;
  auto make = [&calls]() {
    ++calls;
    return Status::IOError("deliberately dropped");
  };
  D3L_IGNORE_STATUS(make(), "test: exercising the sanctioned discard path");
  EXPECT_EQ(calls, 1);

  // Result<T> discards go through the same macro.
  auto make_result = [&calls]() -> Result<int> {
    ++calls;
    return 41;
  };
  D3L_IGNORE_STATUS(make_result(),
                    "test: Result<T> is [[nodiscard]] too and the macro "
                    "must accept it unchanged");
  EXPECT_EQ(calls, 2);
}

TEST(StatusTest, UnavailableFactoryAndPredicate) {
  Status s = Status::Unavailable("shard server 10.0.0.1:7001 unreachable");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_NE(s.ToString().find("unreachable"), std::string::npos);
  EXPECT_FALSE(Status::OK().IsUnavailable());
  EXPECT_FALSE(Status::Internal("x").IsUnavailable());
}

}  // namespace
}  // namespace d3l

#include "lsh/lsh_forest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "io/binary_io.h"
#include "lsh/minhash.h"

namespace d3l {
namespace {

std::set<std::string> SetWithSharedPrefix(int shared, int total, int salt) {
  std::set<std::string> s;
  for (int i = 0; i < shared; ++i) s.insert("common_" + std::to_string(i));
  for (int i = shared; i < total; ++i) {
    s.insert("own_" + std::to_string(salt) + "_" + std::to_string(i));
  }
  return s;
}

class LshForestTest : public ::testing::Test {
 protected:
  LshForestTest() : hasher_(256, 7) {}
  MinHasher hasher_;
};

TEST(ClampForestToSignatureTest, FitsKeyShapeToShortSignatures) {
  LshForestOptions o;  // default 8 trees * 8 hashes = 64 values
  // Plenty of values: untouched.
  auto f = ClampForestToSignature(o, 256);
  EXPECT_EQ(f.num_trees, 8u);
  EXPECT_EQ(f.hashes_per_tree, 8u);
  // 32 values (rp_bits=256 byte sequence): per-tree keys shrink to 4.
  f = ClampForestToSignature(o, 32);
  EXPECT_EQ(f.num_trees, 8u);
  EXPECT_EQ(f.hashes_per_tree, 4u);
  // Fewer values than trees: tree count shrinks too (rp_bits=32 -> 4 values).
  f = ClampForestToSignature(o, 4);
  EXPECT_EQ(f.num_trees, 4u);
  EXPECT_EQ(f.hashes_per_tree, 1u);
  EXPECT_LE(f.num_trees * f.hashes_per_tree, 4u);
}

TEST(ClampForestToSignatureTest, ClampedForestAcceptsTheShortSignature) {
  LshForest forest(ClampForestToSignature(LshForestOptions{}, 4));
  forest.Insert(0, Signature{1, 2, 3, 4});  // would abort unclamped
  forest.Index();
  EXPECT_EQ(forest.Query(Signature{1, 2, 3, 4}, 1), std::vector<uint32_t>{0});
}

TEST_F(LshForestTest, FindsExactDuplicate) {
  LshForest forest;
  auto q = hasher_.Sign(SetWithSharedPrefix(50, 50, 0));
  forest.Insert(0, q);
  for (uint32_t i = 1; i < 50; ++i) {
    forest.Insert(i, hasher_.Sign(SetWithSharedPrefix(0, 40, i)));
  }
  forest.Index();
  auto hits = forest.Query(q, 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0], 0u);
}

TEST_F(LshForestTest, NearNeighbourRecall) {
  // 10 planted near-duplicates of the query among 300 unrelated items; the
  // forest must retrieve most planted items in a top-20 query.
  LshForest forest;
  auto query_set = SetWithSharedPrefix(60, 60, 1000);
  for (uint32_t i = 0; i < 10; ++i) {
    // ~85% overlapping with the query set.
    auto s = SetWithSharedPrefix(55, 60, 2000 + i);
    forest.Insert(i, hasher_.Sign(s));
  }
  for (uint32_t i = 10; i < 310; ++i) {
    forest.Insert(i, hasher_.Sign(SetWithSharedPrefix(5, 50, 3000 + i)));
  }
  forest.Index();
  auto hits = forest.Query(hasher_.Sign(query_set), 20);
  size_t planted = 0;
  for (uint32_t id : hits) {
    if (id < 10) ++planted;
  }
  EXPECT_GE(planted, 7u);
}

TEST_F(LshForestTest, QueryRespectsM) {
  LshForest forest;
  auto s = SetWithSharedPrefix(30, 30, 0);
  auto sig = hasher_.Sign(s);
  for (uint32_t i = 0; i < 40; ++i) forest.Insert(i, sig);
  forest.Index();
  EXPECT_LE(forest.Query(sig, 10).size(), 10u);
  EXPECT_TRUE(forest.Query(sig, 0).empty());
}

TEST_F(LshForestTest, NoCandidatesForUnrelatedQuery) {
  LshForest forest;
  for (uint32_t i = 0; i < 50; ++i) {
    forest.Insert(i, hasher_.Sign(SetWithSharedPrefix(0, 30, i)));
  }
  forest.Index();
  auto hits = forest.Query(hasher_.Sign(SetWithSharedPrefix(0, 30, 9999)), 10);
  // Descending to depth 1 may return a few accidental collisions, but the
  // unrelated query must not flood.
  EXPECT_LE(hits.size(), 10u);
}

TEST_F(LshForestTest, QueryAtDepthIsSelective) {
  LshForest forest;
  auto near = SetWithSharedPrefix(58, 60, 1);   // near-duplicate
  auto far = SetWithSharedPrefix(10, 60, 2);    // weak overlap
  auto query = SetWithSharedPrefix(60, 60, 3);
  forest.Insert(0, hasher_.Sign(near));
  forest.Insert(1, hasher_.Sign(far));
  forest.Index();
  auto deep_hits = forest.QueryAtDepth(hasher_.Sign(query), 4);
  // The weak-overlap item should not match 4 consecutive minima in a tree.
  EXPECT_EQ(std::count(deep_hits.begin(), deep_hits.end(), 1u), 0);
}

TEST_F(LshForestTest, InsertAfterIndexReindexes) {
  LshForest forest;
  auto sig = hasher_.Sign(SetWithSharedPrefix(20, 20, 0));
  forest.Insert(0, sig);
  forest.Index();
  forest.Insert(1, sig);
  forest.Index();
  auto hits = forest.Query(sig, 10);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(LshForestTest, SizeAndMemory) {
  LshForest forest;
  EXPECT_EQ(forest.size(), 0u);
  forest.Insert(0, hasher_.Sign(SetWithSharedPrefix(10, 10, 0)));
  EXPECT_EQ(forest.size(), 1u);
  EXPECT_GT(forest.MemoryUsage(), 0u);
}

TEST_F(LshForestTest, TreeArraysExposeStoredKeys) {
  // The serialization accessors: every inserted signature contributes
  // hashes_per_tree key values (the tree's slice of the signature) plus one
  // id per tree, laid out as parallel flat arrays.
  LshForest forest;  // default 8 trees * 8 hashes
  auto sig_a = hasher_.Sign(SetWithSharedPrefix(20, 20, 0));
  auto sig_b = hasher_.Sign(SetWithSharedPrefix(0, 25, 1));
  forest.Insert(7, sig_a);
  forest.Insert(9, sig_b);

  ASSERT_EQ(forest.num_trees(), forest.options().num_trees);
  const size_t kpt = forest.options().hashes_per_tree;
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    ASSERT_EQ(forest.tree_size(t), 2u);
    const uint64_t* keys = forest.tree_keys(t);
    const LshForest::ItemId* ids = forest.tree_ids(t);
    // Pre-Index(), entries appear in insertion order.
    EXPECT_EQ(ids[0], 7u);
    EXPECT_EQ(ids[1], 9u);
    for (size_t i = 0; i < kpt; ++i) {
      EXPECT_EQ(keys[0 * kpt + i], sig_a.at(t * kpt + i));
      EXPECT_EQ(keys[1 * kpt + i], sig_b.at(t * kpt + i));
    }
  }

  // After Index() the entries are key-sorted but the same multiset.
  forest.Index();
  for (size_t t = 0; t < forest.num_trees(); ++t) {
    ASSERT_EQ(forest.tree_size(t), 2u);
    const uint64_t* keys = forest.tree_keys(t);
    const LshForest::ItemId* ids = forest.tree_ids(t);
    std::vector<std::vector<uint64_t>> sorted_keys;
    std::vector<LshForest::ItemId> seen_ids;
    for (size_t e = 0; e < forest.tree_size(t); ++e) {
      sorted_keys.emplace_back(keys + e * kpt, keys + (e + 1) * kpt);
      seen_ids.push_back(ids[e]);
    }
    EXPECT_TRUE(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
    std::sort(seen_ids.begin(), seen_ids.end());
    EXPECT_EQ(seen_ids, (std::vector<LshForest::ItemId>{7u, 9u}));
  }
}

TEST_F(LshForestTest, MemoryUsageIsExact) {
  // MemoryUsage is documented exact, byte for byte: an empty same-shape
  // forest is the fixed baseline, and each loaded entry adds exactly its
  // flat-array footprint (hashes_per_tree u64 keys + one u32 id per tree)
  // when the arrays are owned — and nothing when they are borrowed from a
  // snapshot mapping.
  LshForestOptions options;
  options.num_trees = 4;
  options.hashes_per_tree = 6;
  MinHasher hasher(64, 3);
  LshForest forest(options);
  const uint32_t n = 25;
  for (uint32_t i = 0; i < n; ++i) {
    forest.Insert(i, hasher.Sign(SetWithSharedPrefix(5, 30, static_cast<int>(i))));
  }
  forest.Index();

  const std::string path = ::testing::TempDir() + "/forest_mem.bin";
  io::Writer w;
  ASSERT_TRUE(w.Open(path, "LSHFRST\n", 1).ok());
  w.BeginSection(0x54534554u);
  forest.Save(w);
  ASSERT_TRUE(w.Finish().ok());

  const size_t base = LshForest(options).MemoryUsage();
  const size_t per_entry_bytes =
      options.num_trees *
      (options.hashes_per_tree * sizeof(uint64_t) + sizeof(LshForest::ItemId));

  {  // Buffered load: owns every array, sized exactly to the entry count.
    io::Reader r;
    ASSERT_TRUE(r.Open(path, "LSHFRST\n", 1, 1, nullptr, io::ReadMode::kBuffered).ok());
    ASSERT_TRUE(r.OpenSection(0x54534554u).ok());
    LshForest loaded = LshForest::Load(r);
    ASSERT_TRUE(r.status().ok());
    EXPECT_FALSE(loaded.borrows_mapping());
    EXPECT_EQ(loaded.MemoryUsage(), base + n * per_entry_bytes);
  }
  {  // Mapped load: arrays borrowed from the mapping, zero heap beyond base.
    io::Reader r;
    ASSERT_TRUE(r.Open(path, "LSHFRST\n", 1, 1, nullptr, io::ReadMode::kMapped).ok());
    ASSERT_TRUE(r.OpenSection(0x54534554u).ok());
    LshForest loaded = LshForest::Load(r);
    ASSERT_TRUE(r.status().ok());
    if (loaded.borrows_mapping()) {
      EXPECT_EQ(loaded.MemoryUsage(), base);
    }
    // Either way the loaded forest answers queries identically.
    for (uint32_t i = 0; i < n; i += 7) {
      Signature q = hasher.Sign(SetWithSharedPrefix(5, 30, static_cast<int>(i)));
      EXPECT_EQ(loaded.Query(q, 10), forest.Query(q, 10));
    }
  }
}

// Property: recall grows with the similarity of the planted neighbour.
class ForestRecallTest : public ::testing::TestWithParam<int> {};

TEST_P(ForestRecallTest, HigherOverlapFoundMoreReliably) {
  int shared = GetParam();  // out of 60
  MinHasher hasher(256, 13);
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    LshForest forest;
    auto query = SetWithSharedPrefix(60, 60, 5000 + trial);
    // Planted: `shared` elements common with query.
    std::set<std::string> planted;
    int i = 0;
    for (const auto& e : query) {
      if (i++ >= shared) break;
      planted.insert(e);
    }
    for (int j = 0; j < 60 - shared; ++j) {
      planted.insert("p_" + std::to_string(trial) + "_" + std::to_string(j));
    }
    forest.Insert(0, hasher.Sign(planted));
    for (uint32_t u = 1; u < 100; ++u) {
      forest.Insert(u, hasher.Sign(SetWithSharedPrefix(0, 50, 7000 + 100 * trial + u)));
    }
    forest.Index();
    auto hits = forest.Query(hasher.Sign(query), 10);
    if (std::find(hits.begin(), hits.end(), 0u) != hits.end()) ++found;
  }
  if (shared >= 54) {
    EXPECT_GE(found, 17) << "shared=" << shared;  // j ~ 0.8+
  } else if (shared >= 42) {
    EXPECT_GE(found, 10) << "shared=" << shared;  // j ~ 0.5+
  }
  // Low-similarity plants carry no guarantee; nothing asserted.
}

INSTANTIATE_TEST_SUITE_P(OverlapLevels, ForestRecallTest,
                         ::testing::Values(42, 48, 54, 60));

TEST(ForestDepthCountsTest, CountsMatchQueryAtDepthAndDecomposeAcrossForests) {
  MinHasher hasher(64, 13);
  LshForestOptions options;
  options.num_trees = 4;
  options.hashes_per_tree = 6;
  LshForest whole(options);
  LshForest left(options);
  LshForest right(options);
  for (uint32_t i = 0; i < 60; ++i) {
    Signature sig = hasher.Sign(SetWithSharedPrefix(static_cast<int>(i % 40), 50,
                                                    static_cast<int>(i / 7)));
    whole.Insert(i, sig);
    (i % 2 == 0 ? left : right).Insert(i, sig);
  }
  whole.Index();
  left.Index();
  right.Index();

  Signature query = hasher.Sign(SetWithSharedPrefix(35, 50, 2));
  std::vector<size_t> counts = whole.DepthCounts(query);
  ASSERT_EQ(counts.size(), options.hashes_per_tree);
  for (size_t d = 1; d <= counts.size(); ++d) {
    // counts[d-1] is exactly the distinct-match count QueryAtDepth sees.
    EXPECT_EQ(counts[d - 1], whole.QueryAtDepth(query, d).size()) << "d=" << d;
    if (d > 1) {
      EXPECT_LE(counts[d - 1], counts[d - 2]);  // monotone
    }
  }

  // Disjoint forests: counts add element-wise into the union's counts —
  // the property sharded serving relies on.
  std::vector<size_t> lc = left.DepthCounts(query);
  std::vector<size_t> rc = right.DepthCounts(query);
  for (size_t d = 0; d < counts.size(); ++d) {
    EXPECT_EQ(lc[d] + rc[d], counts[d]) << "d=" << d;
  }

  // StopDepth reproduces Query's descent rule: everything Query(m) returns
  // matches at >= StopDepth.
  for (size_t m : {size_t{1}, size_t{5}, size_t{20}, size_t{1000}}) {
    size_t stop = LshForest::StopDepth(counts, m);
    ASSERT_GE(stop, 1u);
    std::vector<LshForest::ItemId> at_stop = whole.QueryAtDepth(query, stop);
    std::vector<LshForest::ItemId> queried = whole.Query(query, m);
    std::set<LshForest::ItemId> at_stop_set(at_stop.begin(), at_stop.end());
    for (LshForest::ItemId id : queried) {
      EXPECT_TRUE(at_stop_set.count(id)) << "m=" << m << " id=" << id;
    }
    if (stop > 1) {
      EXPECT_GE(at_stop.size(), m);
    }
  }
}

TEST(ForestDepthCountsTest, BudgetedScanMatchesFullScan) {
  MinHasher hasher(64, 13);
  LshForestOptions options;
  options.num_trees = 4;
  options.hashes_per_tree = 6;
  LshForest forest(options);
  for (uint32_t i = 0; i < 80; ++i) {
    forest.Insert(i, hasher.Sign(SetWithSharedPrefix(static_cast<int>(i % 40), 50,
                                                     static_cast<int>(i / 5))));
  }
  forest.Index();

  for (int q = 0; q < 6; ++q) {
    Signature query = hasher.Sign(SetWithSharedPrefix(30 + q, 50, q));
    const std::vector<size_t> full = forest.DepthCounts(query);

    // A budget the forest never reaches leaves nothing to cut off: the
    // early-terminated scan must return identical counts at every depth.
    EXPECT_EQ(forest.DepthCounts(query, forest.size() + 1), full) << "q=" << q;

    // Saturating budgets: counts stay exact at the stop depth and deeper,
    // clamped entries stay >= the budget, and — the property retrieval
    // rides on — the resolved stop depth is identical to the full scan's.
    for (size_t m : {size_t{1}, size_t{2}, size_t{5}, size_t{16}, size_t{64}}) {
      const std::vector<size_t> budgeted = forest.DepthCounts(query, m);
      ASSERT_EQ(budgeted.size(), full.size()) << "q=" << q << " m=" << m;
      const size_t stop = LshForest::StopDepth(full, m);
      EXPECT_EQ(LshForest::StopDepth(budgeted, m), stop) << "q=" << q << " m=" << m;
      for (size_t d = stop; d <= full.size(); ++d) {
        EXPECT_EQ(budgeted[d - 1], full[d - 1]) << "q=" << q << " m=" << m << " d=" << d;
      }
      for (size_t d = 1; d < stop; ++d) {
        EXPECT_LE(budgeted[d - 1], full[d - 1]) << "clamped entries underestimate";
        if (full[stop - 1] >= m) {
          EXPECT_GE(budgeted[d - 1], m) << "clamp may never dip below the budget";
        }
      }
    }
  }
}

}  // namespace
}  // namespace d3l

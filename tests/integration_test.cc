// End-to-end integration tests: D3L against generated benchmarks with
// ground truth, echoing (at reduced scale) the paper's experimental claims.
#include <gtest/gtest.h>

#include "baselines/tus.h"
#include "benchdata/domains.h"
#include "benchdata/realish_gen.h"
#include "benchdata/synthetic_gen.h"
#include "core/join_graph.h"
#include "core/query.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

using core::D3LEngine;
using core::D3LOptions;
using core::SearchResult;
using eval::RankedTable;

// The paper's running example as a golden test: in a lake holding Figure 1's
// S1/S2/S3 plus unrelated filler tables, querying with S1 must rank the two
// related GP sources above every filler.
TEST(Figure1GoldenTest, S1QueryRanksS2AndS3AboveFiller) {
  DataLake lake = testutil::FigureLake(6);
  D3LEngine engine;
  ASSERT_TRUE(engine.IndexLake(lake).ok());

  auto res = engine.Search(testutil::FigureS1(), lake.size());
  ASSERT_TRUE(res.ok());

  auto rank_of = [&](const std::string& name) {
    for (size_t i = 0; i < res->ranked.size(); ++i) {
      if (lake.table(res->ranked[i].table_index).name() == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  int rank_s2 = rank_of("s2_gp_funding");
  int rank_s3 = rank_of("s3_local_gps");
  ASSERT_GE(rank_s2, 0) << "S2 not retrieved at all";
  ASSERT_GE(rank_s3, 0) << "S3 not retrieved at all";

  for (size_t i = 0; i < res->ranked.size(); ++i) {
    const std::string& name = lake.table(res->ranked[i].table_index).name();
    if (name.rfind("filler_", 0) == 0) {
      EXPECT_LT(rank_s2, static_cast<int>(i)) << name << " outranks S2";
      EXPECT_LT(rank_s3, static_cast<int>(i)) << name << " outranks S3";
    }
  }
}

// Shared fixtures are expensive; build once per suite.
class SyntheticIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchdata::SyntheticOptions opts;
    opts.num_base_tables = 10;
    opts.derived_per_base = 9;
    opts.base_rows_min = 80;
    opts.base_rows_max = 160;
    opts.seed = 101;
    auto gen = benchdata::GenerateSynthetic(opts);
    ASSERT_TRUE(gen.ok());
    data_ = new benchdata::GeneratedLake(std::move(*gen));
    engine_ = new D3LEngine();
    ASSERT_TRUE(engine_->IndexLake(data_->lake).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete data_;
    engine_ = nullptr;
    data_ = nullptr;
  }

  std::vector<std::string> RankedNames(const SearchResult& res) {
    std::vector<std::string> names;
    for (const auto& m : res.ranked) {
      names.push_back(data_->lake.table(m.table_index).name());
    }
    return names;
  }

  static benchdata::GeneratedLake* data_;
  static D3LEngine* engine_;
};

benchdata::GeneratedLake* SyntheticIntegrationTest::data_ = nullptr;
D3LEngine* SyntheticIntegrationTest::engine_ = nullptr;

TEST_F(SyntheticIntegrationTest, HighPrecisionAtSmallK) {
  // Experiment 2's headline: D3L is highly precise for small k.
  auto targets = eval::SampleTargets(data_->lake, 10, 7);
  double precision_sum = 0;
  for (uint32_t t : targets) {
    auto res = engine_->Search(data_->lake.table(t), 5);
    ASSERT_TRUE(res.ok());
    auto e = eval::EvaluateTopK(RankedNames(*res), data_->lake.table(t).name(),
                                data_->truth);
    precision_sum += e.precision;
  }
  EXPECT_GE(precision_sum / 10, 0.8);
}

TEST_F(SyntheticIntegrationTest, RecallGrowsWithK) {
  auto targets = eval::SampleTargets(data_->lake, 6, 13);
  double recall_small = 0;
  double recall_large = 0;
  for (uint32_t t : targets) {
    const Table& target = data_->lake.table(t);
    auto res5 = engine_->Search(target, 5);
    auto res40 = engine_->Search(target, 40);
    ASSERT_TRUE(res5.ok());
    ASSERT_TRUE(res40.ok());
    recall_small +=
        eval::EvaluateTopK(RankedNames(*res5), target.name(), data_->truth).recall;
    recall_large +=
        eval::EvaluateTopK(RankedNames(*res40), target.name(), data_->truth).recall;
  }
  EXPECT_GT(recall_large, recall_small);
  EXPECT_GE(recall_large / 6, 0.5);
}

TEST_F(SyntheticIntegrationTest, AggregateBeatsWorstIndividualEvidence) {
  // Experiment 1's shape: the combined framework is at least as good as
  // weak individual evidence types (format is the weakest).
  auto targets = eval::SampleTargets(data_->lake, 6, 29);

  D3LOptions format_only;
  format_only.enabled = {false, false, true, false, false};
  D3LEngine format_engine(format_only);
  ASSERT_TRUE(format_engine.IndexLake(data_->lake).ok());

  double agg = 0;
  double fmt = 0;
  for (uint32_t t : targets) {
    const Table& target = data_->lake.table(t);
    auto res_a = engine_->Search(target, 20);
    auto res_f = format_engine.Search(target, 20);
    ASSERT_TRUE(res_a.ok());
    ASSERT_TRUE(res_f.ok());
    agg += eval::EvaluateTopK(RankedNames(*res_a), target.name(), data_->truth)
               .precision;
    fmt += eval::EvaluateTopK(RankedNames(*res_f), target.name(), data_->truth)
               .precision;
  }
  EXPECT_GE(agg, fmt);
}

TEST_F(SyntheticIntegrationTest, SelfIsNearestWhenQueried) {
  // A table drawn from the lake should retrieve itself at distance ~0.
  const Table& self = data_->lake.table(3);
  auto res = engine_->Search(self, 3);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->ranked.empty());
  EXPECT_EQ(res->ranked[0].table_index, 3u);
  EXPECT_LT(res->ranked[0].distance, 0.15);
}

class RealishIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchdata::RealishOptions opts;
    opts.num_clusters = 12;
    opts.tables_per_cluster_min = 4;
    opts.tables_per_cluster_max = 7;
    opts.rows_min = 50;
    opts.rows_max = 120;
    opts.seed = 201;
    auto gen = benchdata::GenerateRealish(opts);
    ASSERT_TRUE(gen.ok());
    data_ = new benchdata::GeneratedLake(std::move(*gen));
    engine_ = new D3LEngine();
    ASSERT_TRUE(engine_->IndexLake(data_->lake).ok());
    graph_ = new core::SaJoinGraph(core::SaJoinGraph::Build(*engine_));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete engine_;
    delete data_;
    graph_ = nullptr;
    engine_ = nullptr;
    data_ = nullptr;
  }

  static benchdata::GeneratedLake* data_;
  static D3LEngine* engine_;
  static core::SaJoinGraph* graph_;
};

benchdata::GeneratedLake* RealishIntegrationTest::data_ = nullptr;
D3LEngine* RealishIntegrationTest::engine_ = nullptr;
core::SaJoinGraph* RealishIntegrationTest::graph_ = nullptr;

TEST_F(RealishIntegrationTest, FindsRelatedTablesDespiteDirt) {
  auto targets = eval::SampleTargets(data_->lake, 8, 5);
  double precision = 0;
  for (uint32_t t : targets) {
    const Table& target = data_->lake.table(t);
    auto res = engine_->Search(target, 10);
    ASSERT_TRUE(res.ok());
    std::vector<std::string> names;
    for (const auto& m : res->ranked) {
      names.push_back(data_->lake.table(m.table_index).name());
    }
    precision += eval::EvaluateTopK(names, target.name(), data_->truth).precision;
  }
  EXPECT_GE(precision / 8, 0.5);
}

TEST_F(RealishIntegrationTest, JoinGraphConnectsClusters) {
  // Cluster tables share entity pools: the SA-join graph must not be empty.
  EXPECT_GT(graph_->num_edges(), 0u);
}

TEST_F(RealishIntegrationTest, JoinPathsImproveCoverage) {
  // Experiments 8/10: join paths increase average target coverage.
  auto targets = eval::SampleTargets(data_->lake, 6, 17);
  double cov_plain_sum = 0;
  double cov_join_sum = 0;
  size_t counted = 0;
  for (uint32_t t : targets) {
    const Table& target = data_->lake.table(t);
    auto res = engine_->Search(target, 8);
    ASSERT_TRUE(res.ok());
    if (res->ranked.empty()) continue;

    std::vector<RankedTable> topk;
    for (const auto& m : res->ranked) {
      RankedTable rt;
      rt.name = data_->lake.table(m.table_index).name();
      for (const auto& p : m.pairs) {
        rt.alignments.push_back(
            {p.target_column, engine_->indexes().profile(p.attribute_id).ref.column});
      }
      topk.push_back(std::move(rt));
    }

    std::vector<std::vector<RankedTable>> joins(topk.size());
    std::unordered_set<uint32_t> top_set;
    for (const auto& m : res->ranked) top_set.insert(m.table_index);
    std::unordered_set<uint32_t> related;
    for (const auto& [ti, a] : res->candidate_alignments) related.insert(ti);

    for (size_t i = 0; i < res->ranked.size(); ++i) {
      auto paths = core::FindJoinPaths(*graph_, res->ranked[i].table_index, top_set,
                                       related);
      std::unordered_set<uint32_t> path_tables;
      for (const auto& p : paths) {
        for (size_t j = 1; j < p.tables.size(); ++j) path_tables.insert(p.tables[j]);
      }
      for (uint32_t pt : path_tables) {
        RankedTable rt;
        rt.name = data_->lake.table(pt).name();
        auto it = res->candidate_alignments.find(pt);
        if (it != res->candidate_alignments.end()) {
          for (const auto& [tc, attr] : it->second) {
            rt.alignments.push_back({tc, engine_->indexes().profile(attr).ref.column});
          }
        }
        joins[i].push_back(std::move(rt));
      }
    }

    cov_plain_sum += eval::AverageCoverage(topk, target.num_columns());
    cov_join_sum +=
        eval::AverageJoinCoverage(topk, joins, target.num_columns());
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GE(cov_join_sum, cov_plain_sum);  // joins never hurt coverage
  EXPECT_GT(cov_plain_sum / static_cast<double>(counted), 0.2);
}

TEST_F(RealishIntegrationTest, D3LBeatsTusOnDirtyData) {
  // Experiment 3's shape: on dirty data D3L's fine-grained features beat
  // TUS's equality-leaning value evidence.
  baselines::YagoKb kb(benchdata::DomainRegistry::Instance().BuildKbVocabulary());
  SubwordHashModel wem;
  baselines::TusEngine tus(baselines::TusOptions{}, &kb, &wem);
  ASSERT_TRUE(tus.IndexLake(data_->lake).ok());

  auto targets = eval::SampleTargets(data_->lake, 8, 23);
  double d3l_prec = 0;
  double tus_prec = 0;
  for (uint32_t t : targets) {
    const Table& target = data_->lake.table(t);
    auto res_d = engine_->Search(target, 10);
    auto res_t = tus.Search(target, 10);
    ASSERT_TRUE(res_d.ok());
    ASSERT_TRUE(res_t.ok());
    std::vector<std::string> names_d;
    for (const auto& m : res_d->ranked) {
      names_d.push_back(data_->lake.table(m.table_index).name());
    }
    std::vector<std::string> names_t;
    for (const auto& m : res_t->ranked) {
      names_t.push_back(data_->lake.table(m.table_index).name());
    }
    d3l_prec += eval::EvaluateTopK(names_d, target.name(), data_->truth).precision;
    tus_prec += eval::EvaluateTopK(names_t, target.name(), data_->truth).precision;
  }
  EXPECT_GE(d3l_prec, tus_prec);
}

}  // namespace
}  // namespace d3l

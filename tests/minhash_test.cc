#include "lsh/minhash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace d3l {
namespace {

std::set<std::string> MakeSet(int lo, int hi) {
  std::set<std::string> s;
  for (int i = lo; i < hi; ++i) s.insert("elem_" + std::to_string(i));
  return s;
}

double ExactJaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  size_t inter = 0;
  for (const auto& x : a) inter += b.count(x);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0 : static_cast<double>(inter) / static_cast<double>(uni);
}

TEST(MinHashTest, DeterministicSignatures) {
  MinHasher h(128, 7);
  auto s = MakeSet(0, 50);
  EXPECT_EQ(h.Sign(s), h.Sign(s));
  MinHasher h2(128, 7);
  EXPECT_EQ(h.Sign(s), h2.Sign(s));
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  MinHasher h(256, 7);
  auto s = MakeSet(0, 40);
  EXPECT_DOUBLE_EQ(EstimateJaccard(h.Sign(s), h.Sign(s)), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  MinHasher h(256, 7);
  double est = EstimateJaccard(h.Sign(MakeSet(0, 50)), h.Sign(MakeSet(100, 150)));
  EXPECT_LT(est, 0.05);
}

TEST(MinHashTest, EmptySetMatchesNothing) {
  MinHasher h(64, 7);
  Signature empty = h.Sign(std::set<std::string>{});
  Signature other = h.Sign(MakeSet(0, 10));
  EXPECT_DOUBLE_EQ(EstimateJaccard(empty, other), 0.0);
  EXPECT_DOUBLE_EQ(EstimateJaccard(empty, empty), 0.0);
}

TEST(MinHashTest, VectorAndSetInputsAgree) {
  MinHasher h(64, 7);
  std::set<std::string> s = MakeSet(0, 20);
  std::vector<std::string> v(s.begin(), s.end());
  EXPECT_EQ(h.Sign(s), h.Sign(v));
}

// Property: the estimator is unbiased with standard error
// sqrt(j(1-j)/k); with k=256, 3 sigma is under 0.095 for any j.
class MinHashAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(MinHashAccuracyTest, EstimateWithinThreeSigma) {
  double target_jaccard = GetParam();
  MinHasher h(256, 99);
  // Construct two sets with the exact target overlap: |A|=|B|=n with
  // shared prefix m: j = m / (2n - m)  =>  m = 2nj/(1+j).
  const int n = 400;
  int m = static_cast<int>(std::round(2.0 * n * target_jaccard / (1 + target_jaccard)));
  auto a = MakeSet(0, n);
  std::set<std::string> b;
  for (int i = 0; i < m; ++i) b.insert("elem_" + std::to_string(i));
  for (int i = 0; i < n - m; ++i) b.insert("other_" + std::to_string(i));
  double exact = ExactJaccard(a, b);
  double est = EstimateJaccard(h.Sign(a), h.Sign(b));
  double sigma = std::sqrt(exact * (1 - exact) / 256.0);
  EXPECT_NEAR(est, exact, 3 * sigma + 0.02) << "target j=" << target_jaccard;
}

INSTANTIATE_TEST_SUITE_P(JaccardLevels, MinHashAccuracyTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// Property: monotonicity — higher true overlap gives higher estimates on
// average (checked across several disjoint seeds).
TEST(MinHashTest, EstimatesOrderedByTrueSimilarity) {
  MinHasher h(256, 5);
  auto base = MakeSet(0, 100);
  double prev = -1;
  for (int shared : {20, 50, 80, 100}) {
    std::set<std::string> other;
    for (int i = 0; i < shared; ++i) other.insert("elem_" + std::to_string(i));
    for (int i = 0; i < 100 - shared; ++i) other.insert("x_" + std::to_string(i));
    double est = EstimateJaccard(h.Sign(base), h.Sign(other));
    EXPECT_GT(est, prev);
    prev = est;
  }
}

TEST(MinHashTest, DistanceIsOneMinusSimilarity) {
  MinHasher h(64, 3);
  auto a = h.Sign(MakeSet(0, 30));
  auto b = h.Sign(MakeSet(10, 40));
  EXPECT_DOUBLE_EQ(EstimateJaccardDistance(a, b), 1.0 - EstimateJaccard(a, b));
}

}  // namespace
}  // namespace d3l

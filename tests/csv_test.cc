#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "table/lake.h"

namespace d3l {
namespace {

TEST(CsvTest, ParsesSimpleCsv) {
  auto r = ReadCsvString("a,b,c\n1,2,3\n4,5,6\n", "t");
  ASSERT_TRUE(r.ok());
  const Table& t = *r;
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(1).cell(1), "5");
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto r = ReadCsvString("name,addr\n\"Smith, John\",\"12 \"\"High\"\" St\"\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).cell(0), "Smith, John");
  EXPECT_EQ(r->column(1).cell(0), "12 \"High\" St");
}

TEST(CsvTest, QuotedNewlines) {
  auto r = ReadCsvString("a,b\n\"line1\nline2\",x\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0).cell(0), "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  auto r = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->column(1).cell(0), "2");
}

TEST(CsvTest, BlankLinesSkipped) {
  auto r = ReadCsvString("a,b\n1,2\n\n3,4\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(CsvTest, ArityMismatchFailsByDefault) {
  auto r = ReadCsvString("a,b\n1,2,3\n", "t");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CsvTest, ArityMismatchSkippedWhenConfigured) {
  CsvOptions opts;
  opts.skip_malformed_rows = true;
  auto r = ReadCsvString("a,b\n1,2,3\nx,y\n", "t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->column(0).cell(0), "x");
}

TEST(CsvTest, DuplicateHeadersDeduplicated) {
  auto r = ReadCsvString("a,a,a\n1,2,3\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).name(), "a");
  EXPECT_EQ(r->column(1).name(), "a_2");
  EXPECT_EQ(r->column(2).name(), "a_3");
}

TEST(CsvTest, EmptyHeaderNamesFilled) {
  auto r = ReadCsvString(",b\n1,2\n", "t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).name(), "col_0");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto r = ReadCsvString("a\n\"unterminated\n", "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, EmptyInputFails) {
  auto r = ReadCsvString("", "t");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RoundTrip) {
  auto t = std::move(Table::FromRows("rt", {"n,ame", "plain"},
                                     {{"a\"b", "x"}, {"line\nbreak", ","}}))
               .ValueOrDie();
  std::string csv = WriteCsvString(t);
  auto back = ReadCsvString(csv, "rt");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->column(0).name(), "n,ame");
  EXPECT_EQ(back->column(0).cell(0), "a\"b");
  EXPECT_EQ(back->column(0).cell(1), "line\nbreak");
  EXPECT_EQ(back->column(1).cell(1), ",");
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "d3l_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CsvFileTest, WriteAndReadFile) {
  auto t = std::move(Table::FromRows("f", {"a", "b"}, {{"1", "2"}})).ValueOrDie();
  std::string path = (dir_ / "f.csv").string();
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "f");  // named after the file stem
  EXPECT_EQ(back->num_rows(), 1u);
}

TEST_F(CsvFileTest, MissingFileFails) {
  auto r = ReadCsvFile((dir_ / "absent.csv").string());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST_F(CsvFileTest, LoadDirectory) {
  for (int i = 0; i < 3; ++i) {
    auto t = std::move(Table::FromRows("t" + std::to_string(i), {"a"}, {{"1"}}))
                 .ValueOrDie();
    ASSERT_TRUE(WriteCsvFile(t, (dir_ / ("t" + std::to_string(i) + ".csv")).string()).ok());
  }
  // A non-CSV file should be ignored.
  std::ofstream(dir_ / "notes.txt") << "ignore me";
  DataLake lake;
  ASSERT_TRUE(lake.LoadDirectory(dir_.string()).ok());
  EXPECT_EQ(lake.size(), 3u);
  EXPECT_GE(lake.TableIndex("t1"), 0);
}

TEST_F(CsvFileTest, LoadDirectoryRejectsNonDirectory) {
  DataLake lake;
  EXPECT_TRUE(lake.LoadDirectory((dir_ / "absent_dir").string()).IsIOError());
}

}  // namespace
}  // namespace d3l

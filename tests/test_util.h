// Shared helpers for core/baseline tests: small hand-built lakes echoing
// the paper's Figure 1 running example.
#pragma once

#include <string>
#include <vector>

#include "table/lake.h"
#include "table/table.h"

namespace d3l::testutil {

inline Table MakeTable(std::string name, std::vector<std::string> cols,
                       std::vector<std::vector<std::string>> rows) {
  return std::move(Table::FromRows(std::move(name), std::move(cols), std::move(rows)))
      .ValueOrDie();
}

/// The paper's Figure 1: sources S1 (GP practices), S2 (GP funding),
/// S3 (Local GPs) — plus unrelated filler tables.
inline Table FigureS1() {
  return MakeTable(
      "s1_gp_practices", {"Practice Name", "Address", "City", "Postcode", "Patients"},
      {{"Dr E Cullen", "51 Botanic Av", "Belfast", "BT7 1JL", "1202"},
       {"Blackfriars", "1a Chapel St", "Salford", "M3 6AF", "3572"},
       {"Radclife Care", "69 Church St", "Manchester", "M26 2SP", "2210"},
       {"Bolton Medical", "21 Rupert St", "Bolton", "BL3 6PY", "1870"},
       {"Oxford Road Practice", "5 Oxford Rd", "Manchester", "M13 9PL", "4100"},
       {"Mirabel Surgery", "9 Mirabel St", "Manchester", "M3 1NN", "950"}});
}

inline Table FigureS2() {
  return MakeTable("s2_gp_funding", {"Practice", "City", "Postcode", "Payment"},
                   {{"The London Clinic", "London", "W1G 6BW", "73648"},
                    {"Blackfriars", "Salford", "M3 6AF", "15530"},
                    {"Radclife Care", "Manchester", "M26 2SP", "18220"},
                    {"Bolton Medical", "Bolton", "BL3 6PY", "12790"},
                    {"Mirabel Surgery", "Manchester", "M3 1NN", "9060"}});
}

inline Table FigureS3() {
  return MakeTable("s3_local_gps", {"GP", "Location", "Opening hours"},
                   {{"Blackfriars", "Salford", "08:00-18:00"},
                    {"Radclife Care", "-", "07:00-20:00"},
                    {"Bolton Medical", "Bolton", "08:00-16:00"},
                    {"Oxford Road Practice", "Manchester", "09:00-17:00"}});
}

inline Table FigureTarget() {
  return MakeTable("target_gps", {"Practice", "Street", "City", "Postcode", "Hours"},
                   {{"Radclife Care", "69 Church St", "Manchester", "M26 2SP",
                     "07:00-20:00"},
                    {"Bolton Medical", "21 Rupert St", "Bolton", "BL3 6PY",
                     "08:00-16:00"},
                    {"Blackfriars", "1a Chapel St", "Salford", "M3 6AF",
                     "08:00-18:00"}});
}

/// Unrelated filler: colors and ratings.
inline Table FillerColors(int salt) {
  std::vector<std::vector<std::string>> rows;
  const char* colors[] = {"Red", "Blue", "Green", "Yellow", "Purple", "Teal"};
  for (int i = 0; i < 6; ++i) {
    rows.push_back({std::string(colors[(i + salt) % 6]) + " paint " + std::to_string(salt),
                    std::to_string((i * 7 + salt) % 5 + 1)});
  }
  return MakeTable("filler_colors_" + std::to_string(salt), {"Shade", "Stars"}, rows);
}

/// Unrelated filler: warehouse stock levels (numeric-heavy, no GP overlap).
inline Table FillerInventory(int salt) {
  std::vector<std::vector<std::string>> rows;
  const char* items[] = {"Widget", "Sprocket", "Gasket", "Flange", "Bearing", "Valve"};
  for (int i = 0; i < 6; ++i) {
    rows.push_back({std::string(items[(i + salt) % 6]) + "-" + std::to_string(salt * 10 + i),
                    std::to_string((i * 13 + salt * 3) % 400 + 20),
                    std::to_string((i * 5 + salt) % 9 + 1) + "." +
                        std::to_string((i + salt) % 10) + "0"});
  }
  return MakeTable("filler_inventory_" + std::to_string(salt),
                   {"SKU", "Quantity", "Unit Price"}, rows);
}

/// Unrelated filler: daily weather readings (dates and signed numerics).
inline Table FillerWeather(int salt) {
  std::vector<std::vector<std::string>> rows;
  const char* stations[] = {"Oban", "Lerwick", "Valley", "Leuchars", "Armagh", "Eskdale"};
  for (int i = 0; i < 6; ++i) {
    rows.push_back({std::string(stations[(i + salt) % 6]),
                    "2019-0" + std::to_string(i % 9 + 1) + "-1" + std::to_string(salt % 9),
                    std::to_string((i * 3 + salt) % 25 - 4),
                    std::to_string((i * 11 + salt * 7) % 90)});
  }
  return MakeTable("filler_weather_" + std::to_string(salt),
                   {"Station", "Date", "Max Temp", "Rainfall mm"}, rows);
}

/// The i-th filler table, cycling through the unrelated-domain kinds.
inline Table Filler(int i) {
  switch (i % 3) {
    case 0: return FillerColors(i);
    case 1: return FillerInventory(i);
    default: return FillerWeather(i);
  }
}

/// A small lake with the Figure 1 sources plus unrelated fillers drawn from
/// several domains (colors, inventory, weather).
inline DataLake FigureLake(int fillers = 4) {
  DataLake lake;
  lake.AddTable(FigureS1()).CheckOK();
  lake.AddTable(FigureS2()).CheckOK();
  lake.AddTable(FigureS3()).CheckOK();
  for (int i = 0; i < fillers; ++i) {
    lake.AddTable(Filler(i)).CheckOK();
  }
  return lake;
}

}  // namespace d3l::testutil

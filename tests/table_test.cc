#include "table/table.h"

#include <gtest/gtest.h>

#include "table/lake.h"
#include "table/value.h"

namespace d3l {
namespace {

Table MakeSample() {
  auto r = Table::FromRows("gp", {"Practice", "City", "Patients"},
                           {{"Radclife", "Manchester", "1202"},
                            {"Blackfriars", "Salford", "3572"},
                            {"Bolton Medical", "Bolton", "2210"},
                            {"", "Salford", "-"}});
  return std::move(r).ValueOrDie();
}

TEST(ValueTest, NullDetection) {
  EXPECT_TRUE(IsNullCell(""));
  EXPECT_TRUE(IsNullCell("  "));
  EXPECT_TRUE(IsNullCell("-"));
  EXPECT_TRUE(IsNullCell("N/A"));
  EXPECT_TRUE(IsNullCell("null"));
  EXPECT_TRUE(IsNullCell("NaN"));
  EXPECT_FALSE(IsNullCell("0"));
  EXPECT_FALSE(IsNullCell("none at all"));
}

TEST(ValueTest, CellAsNumber) {
  EXPECT_DOUBLE_EQ(*CellAsNumber("3.5"), 3.5);
  EXPECT_FALSE(CellAsNumber("-").has_value());
  EXPECT_FALSE(CellAsNumber("abc").has_value());
}

TEST(TableTest, BasicShape) {
  Table t = MakeSample();
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.column(0).name(), "Practice");
  EXPECT_EQ(t.ColumnIndex("City"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
}

TEST(TableTest, TypeInference) {
  Table t = MakeSample();
  EXPECT_EQ(t.column(0).type(), ColumnType::kString);
  EXPECT_EQ(t.column(2).type(), ColumnType::kNumeric);
}

TEST(TableTest, NullAndDistinctCounts) {
  Table t = MakeSample();
  EXPECT_EQ(t.column(0).null_count(), 1u);
  EXPECT_EQ(t.column(2).null_count(), 1u);
  EXPECT_EQ(t.column(1).distinct_count(), 3u);  // Manchester, Salford, Bolton
}

TEST(TableTest, NumericExtentSkipsNonNumbers) {
  Table t = MakeSample();
  auto ext = t.column(2).NumericExtent();
  ASSERT_EQ(ext.size(), 3u);
  EXPECT_DOUBLE_EQ(ext[0], 1202);
}

TEST(TableTest, TextExtentSkipsNulls) {
  Table t = MakeSample();
  EXPECT_EQ(t.column(0).TextExtent().size(), 3u);
}

TEST(TableTest, StatsRecomputedAfterAppend) {
  Table t = MakeSample();
  EXPECT_EQ(t.column(1).distinct_count(), 3u);
  ASSERT_TRUE(t.AddRow({"New Practice", "Wigan", "50"}).ok());
  EXPECT_EQ(t.column(1).distinct_count(), 4u);
}

TEST(TableTest, AddColumnAfterRowsFails) {
  Table t = MakeSample();
  EXPECT_TRUE(t.AddColumn("Late").IsInvalidArgument());
}

TEST(TableTest, DuplicateColumnFails) {
  Table t("x");
  ASSERT_TRUE(t.AddColumn("A").ok());
  EXPECT_TRUE(t.AddColumn("A").IsAlreadyExists());
}

TEST(TableTest, ArityMismatchFails) {
  Table t = MakeSample();
  EXPECT_TRUE(t.AddRow({"only", "two"}).IsInvalidArgument());
}

TEST(TableTest, ProjectAndSelect) {
  Table t = MakeSample();
  Table p = t.Project({0, 2}, "proj");
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(1).name(), "Patients");
  EXPECT_EQ(p.num_rows(), 4u);

  Table s = t.SelectRows({1, 2}, "sel");
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.column(0).cell(0), "Blackfriars");
}

TEST(TableTest, MemoryUsagePositive) {
  EXPECT_GT(MakeSample().MemoryUsage(), 0u);
}

TEST(LakeTest, AddAndLookup) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeSample()).ok());
  EXPECT_EQ(lake.size(), 1u);
  EXPECT_EQ(lake.TableIndex("gp"), 0);
  EXPECT_EQ(lake.TableIndex("nope"), -1);
  EXPECT_TRUE(lake.AddTable(MakeSample()).IsAlreadyExists());
}

TEST(LakeTest, Stats) {
  DataLake lake;
  ASSERT_TRUE(lake.AddTable(MakeSample()).ok());
  Table t2 = std::move(Table::FromRows("t2", {"A", "B"}, {{"1", "2"}, {"3", "4"}}))
                 .ValueOrDie();
  ASSERT_TRUE(lake.AddTable(std::move(t2)).ok());
  LakeStats s = lake.Stats();
  EXPECT_EQ(s.num_tables, 2u);
  EXPECT_EQ(s.num_attributes, 5u);
  EXPECT_DOUBLE_EQ(s.avg_arity, 2.5);
  EXPECT_EQ(s.max_arity, 3);
  EXPECT_EQ(s.num_numeric_attributes, 3u);  // Patients + A + B
  EXPECT_GT(s.total_bytes, 0u);
}

}  // namespace
}  // namespace d3l

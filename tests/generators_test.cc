#include <gtest/gtest.h>

#include "benchdata/dirt.h"
#include "common/string_util.h"
#include "benchdata/domains.h"
#include "benchdata/realish_gen.h"
#include "benchdata/synthetic_gen.h"

namespace d3l::benchdata {
namespace {

TEST(DomainsTest, RegistryShape) {
  const DomainRegistry& reg = DomainRegistry::Instance();
  EXPECT_GT(reg.size(), 25u);
  EXPECT_FALSE(reg.EntityDomains().empty());
  EXPECT_FALSE(reg.NumericDomains().empty());
  for (const DomainSpec& s : reg.domains()) {
    EXPECT_FALSE(s.name_synonyms.empty()) << s.name;
    EXPECT_GE(s.num_variants, 1u) << s.name;
  }
}

TEST(DomainsTest, ValuesAreDeterministicGivenSeed) {
  const DomainRegistry& reg = DomainRegistry::Instance();
  for (const DomainSpec& s : reg.domains()) {
    Rng r1(42);
    Rng r2(42);
    EXPECT_EQ(reg.GenerateValue(s.id, 0, &r1), reg.GenerateValue(s.id, 0, &r2))
        << s.name;
  }
}

TEST(DomainsTest, NumericDomainsGenerateNumbers) {
  const DomainRegistry& reg = DomainRegistry::Instance();
  Rng rng(7);
  for (uint32_t id : reg.NumericDomains()) {
    for (int i = 0; i < 20; ++i) {
      std::string v = reg.GenerateValue(id, 0, &rng);
      EXPECT_TRUE(LooksNumeric(v)) << reg.spec(id).name << ": " << v;
    }
  }
}

TEST(DomainsTest, NumericDistributionsDiffer) {
  // KS evidence needs distinguishable numeric domains.
  const DomainRegistry& reg = DomainRegistry::Instance();
  Rng rng(9);
  auto sample = [&](const char* name) {
    std::vector<double> xs;
    uint32_t id = reg.IdOf(name);
    for (int i = 0; i < 300; ++i) {
      xs.push_back(*ParseDouble(reg.GenerateValue(id, 0, &rng)));
    }
    return xs;
  };
  auto age = sample("age");
  auto money = sample("money");
  double max_age = *std::max_element(age.begin(), age.end());
  double max_money = *std::max_element(money.begin(), money.end());
  EXPECT_LE(max_age, 99);
  EXPECT_GT(max_money, 1000);
}

TEST(DomainsTest, VariantsChangeRepresentation) {
  const DomainRegistry& reg = DomainRegistry::Instance();
  uint32_t date = reg.IdOf("date");
  Rng r1(5);
  Rng r2(5);
  std::string iso = reg.GenerateValue(date, 0, &r1);
  std::string slashed = reg.GenerateValue(date, 1, &r2);
  EXPECT_NE(iso.find('-'), std::string::npos);
  EXPECT_NE(slashed.find('/'), std::string::npos);
}

TEST(DomainsTest, KbVocabularyCoversEntityTokens) {
  const DomainRegistry& reg = DomainRegistry::Instance();
  auto vocab = reg.BuildKbVocabulary();
  EXPECT_GT(vocab.size(), 200u);
  ASSERT_TRUE(vocab.count("manchester"));
  // "manchester" belongs to the city domain (and possibly school).
  bool has_city = false;
  for (uint32_t c : vocab["manchester"]) {
    if (c == reg.IdOf("city")) has_city = true;
  }
  EXPECT_TRUE(has_city);
}

TEST(DirtTest, TransformsAreBoundedEdits) {
  Rng rng(3);
  std::string typo = ApplyTypo("manchester", &rng);
  EXPECT_NE(typo, "manchester");
  EXPECT_NEAR(static_cast<double>(typo.size()), 10.0, 1.0);
  std::string abbrev = AbbreviateWord("Portland Street", &rng);
  EXPECT_LT(abbrev.size(), std::string("Portland Street").size());
  EXPECT_NE(abbrev.find('.'), std::string::npos);
  // Short strings pass through untouched.
  EXPECT_EQ(ApplyTypo("ab", &rng), "ab");
  EXPECT_EQ(AbbreviateWord("ab cd", &rng), "ab cd");
}

TEST(DirtTest, ZeroProbabilityIsIdentity) {
  DirtOptions clean;
  clean.typo_prob = clean.abbrev_prob = clean.case_prob = clean.null_prob = 0;
  Rng rng(4);
  EXPECT_EQ(DirtyValue("Bolton Medical", clean, &rng), "Bolton Medical");
}

TEST(SyntheticGenTest, ShapeAndDeterminism) {
  SyntheticOptions opts;
  opts.num_base_tables = 4;
  opts.derived_per_base = 5;
  opts.seed = 3;
  auto a = GenerateSynthetic(opts);
  auto b = GenerateSynthetic(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->lake.size(), 4u * 6u);
  ASSERT_EQ(a->lake.size(), b->lake.size());
  for (size_t i = 0; i < a->lake.size(); ++i) {
    EXPECT_EQ(a->lake.table(i).name(), b->lake.table(i).name());
    EXPECT_EQ(a->lake.table(i).num_rows(), b->lake.table(i).num_rows());
  }
}

TEST(SyntheticGenTest, DerivedTablesRelatedToBase) {
  SyntheticOptions opts;
  opts.num_base_tables = 3;
  opts.derived_per_base = 4;
  opts.seed = 11;
  auto gen = GenerateSynthetic(opts);
  ASSERT_TRUE(gen.ok());
  // Every derived table is related to its base and to its siblings.
  EXPECT_TRUE(gen->truth.TablesRelated("synth_0_0", "synth_base_0"));
  EXPECT_TRUE(gen->truth.TablesRelated("synth_0_0", "synth_0_1"));
  // Different bases are unrelated (labels are base-scoped).
  EXPECT_FALSE(gen->truth.TablesRelated("synth_0_0", "synth_1_0"));
  EXPECT_FALSE(gen->truth.TablesRelated("synth_base_0", "synth_base_1"));
}

TEST(SyntheticGenTest, DerivedRowsComeFromBase) {
  SyntheticOptions opts;
  opts.num_base_tables = 1;
  opts.derived_per_base = 2;
  opts.seed = 19;
  auto gen = GenerateSynthetic(opts);
  ASSERT_TRUE(gen.ok());
  int base_idx = gen->lake.TableIndex("synth_base_0");
  int der_idx = gen->lake.TableIndex("synth_0_0");
  ASSERT_GE(base_idx, 0);
  ASSERT_GE(der_idx, 0);
  const Table& base = gen->lake.table(static_cast<size_t>(base_idx));
  const Table& der = gen->lake.table(static_cast<size_t>(der_idx));
  EXPECT_LE(der.num_columns(), base.num_columns());
  EXPECT_LE(der.num_rows(), base.num_rows());
  // Spot-check: every derived cell of column 0 appears in some base column.
  std::unordered_set<std::string> base_values;
  for (const Column& c : base.columns()) {
    for (const std::string& v : c.cells()) base_values.insert(v);
  }
  for (size_t r = 0; r < der.num_rows(); ++r) {
    EXPECT_TRUE(base_values.count(der.column(0).cell(r)));
  }
}

TEST(RealishGenTest, ShapeAndGroundTruth) {
  RealishOptions opts;
  opts.num_clusters = 6;
  opts.tables_per_cluster_min = 3;
  opts.tables_per_cluster_max = 5;
  opts.seed = 13;
  auto gen = GenerateRealish(opts);
  ASSERT_TRUE(gen.ok());
  EXPECT_GE(gen->lake.size(), 18u);
  EXPECT_LE(gen->lake.size(), 30u);
  // Every table has labels in the truth.
  for (const Table& t : gen->lake.tables()) {
    EXPECT_TRUE(gen->truth.HasTable(t.name())) << t.name();
  }
  // Same-cluster tables share domains: related.
  EXPECT_GT(gen->truth.RelatedCount(gen->lake.table(0).name()), 0u);
}

TEST(RealishGenTest, NumericRatioHigherThanSynthetic) {
  RealishOptions ropts;
  ropts.num_clusters = 10;
  ropts.seed = 21;
  auto real = GenerateRealish(ropts);
  ASSERT_TRUE(real.ok());
  SyntheticOptions sopts;
  sopts.num_base_tables = 6;
  sopts.derived_per_base = 9;
  sopts.seed = 21;
  auto synth = GenerateSynthetic(sopts);
  ASSERT_TRUE(synth.ok());
  // Paper Fig. 2c: the real repository is more numeric.
  EXPECT_GT(real->lake.Stats().numeric_ratio, synth->lake.Stats().numeric_ratio);
}

TEST(RealishGenTest, ClusterTablesShareEntityValues) {
  RealishOptions opts;
  opts.num_clusters = 1;
  opts.tables_per_cluster_min = 4;
  opts.tables_per_cluster_max = 4;
  opts.entity_domain_prob = 1.0;
  opts.dirt.null_prob = 0;
  opts.dirt.typo_prob = 0;
  opts.dirt.abbrev_prob = 0;
  opts.dirt.case_prob = 0;
  opts.seed = 23;
  auto gen = GenerateRealish(opts);
  ASSERT_TRUE(gen.ok());
  ASSERT_EQ(gen->lake.size(), 4u);
  // Entity columns (col 0) of two cluster tables overlap on values.
  std::unordered_set<std::string> a;
  for (const std::string& v : gen->lake.table(0).column(0).cells()) a.insert(v);
  size_t shared = 0;
  for (const std::string& v : gen->lake.table(1).column(0).cells()) {
    if (a.count(v)) ++shared;
  }
  EXPECT_GT(shared, 5u);
}

TEST(RealishGenTest, LargerRealOptionsScale) {
  RealishOptions o = LargerRealOptions(800);
  EXPECT_EQ(o.num_clusters, 100u);
  auto gen = GenerateRealish(LargerRealOptions(80, 3));
  ASSERT_TRUE(gen.ok());
  EXPECT_GE(gen->lake.size(), 40u);
}

TEST(GroundTruthTest, BasicRelations) {
  GroundTruth gt;
  gt.SetTableLabels("t1", {1, 2, 0});
  gt.SetTableLabels("t2", {2, 3});
  gt.SetTableLabels("t3", {4});
  EXPECT_TRUE(gt.TablesRelated("t1", "t2"));
  EXPECT_FALSE(gt.TablesRelated("t1", "t3"));
  EXPECT_FALSE(gt.TablesRelated("t1", "absent"));
  EXPECT_TRUE(gt.AttributesRelated("t1", 1, "t2", 0));
  EXPECT_FALSE(gt.AttributesRelated("t1", 0, "t2", 0));
  // Label 0 is "unlabeled": never related.
  gt.SetTableLabels("t4", {0});
  EXPECT_FALSE(gt.AttributesRelated("t1", 2, "t4", 0));
  EXPECT_EQ(gt.RelatedCount("t1"), 1u);
  auto covered = gt.CoveredColumns("t1", "t2");
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(covered[0], 1u);
  EXPECT_GT(gt.AverageAnswerSize(), 0.0);
}

}  // namespace
}  // namespace d3l::benchdata

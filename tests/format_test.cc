#include "text/format.h"

#include <gtest/gtest.h>

namespace d3l {
namespace {

TEST(FormatTest, PaperExample) {
  // Section III-B: "18 Portland Street, M1 3BE" -> NC+P+A+ (N, then two
  // capitalized words collapsing to C+, punctuation, two alnum tokens).
  EXPECT_EQ(FormatOf("18 Portland Street, M1 3BE"), "NC+P+A+");
}

TEST(FormatTest, PrimitiveClasses) {
  EXPECT_EQ(FormatOf("Hello"), "C");    // [A-Z][a-z]+
  EXPECT_EQ(FormatOf("HELLO"), "U");    // [A-Z]+
  EXPECT_EQ(FormatOf("hello"), "L");    // [a-z]+
  EXPECT_EQ(FormatOf("12345"), "N");    // [0-9]+
  EXPECT_EQ(FormatOf("M13"), "A");      // alnum mix
  EXPECT_EQ(FormatOf("..."), "P+");     // punctuation always renders P+
}

TEST(FormatTest, FirstMatchOrder) {
  // Single uppercase letter: not C (needs lowercase tail), so U.
  EXPECT_EQ(FormatOf("X"), "U");
  // Mixed case beyond C's shape falls through to A.
  EXPECT_EQ(FormatOf("McDonald"), "A");
}

TEST(FormatTest, ConsecutiveCollapse) {
  EXPECT_EQ(FormatOf("one two three"), "L+");
  EXPECT_EQ(FormatOf("One Two three"), "C+L");
  EXPECT_EQ(FormatOf("1 2 3 4"), "N+");
}

TEST(FormatTest, PunctuationRunsSeparateFromWords) {
  EXPECT_EQ(FormatOf("a-b"), "LP+L");
  EXPECT_EQ(FormatOf("a--b"), "LP+L");   // the run "--" is one P token
  EXPECT_EQ(FormatOf("a- -b"), "LP+L");  // two P tokens collapse into P+
}

TEST(FormatTest, StructuredValues) {
  EXPECT_EQ(FormatOf("08:00-18:00"), "NP+NP+NP+N");
  EXPECT_EQ(FormatOf("2019-03-12"), "NP+NP+N");
  EXPECT_EQ(FormatOf("john.smith@mail.co.uk"), "LP+LP+LP+LP+L");
}

TEST(FormatTest, EmptyValue) { EXPECT_EQ(FormatOf(""), ""); }

TEST(FormatTest, RSetDeduplicates) {
  auto rset = RSet({"2019-03-12", "2020-11-01", "12 Mar 2019", ""});
  // Two ISO dates share a format; the textual date differs; empty is dropped.
  EXPECT_EQ(rset.size(), 2u);
  EXPECT_TRUE(rset.count("NP+NP+N"));
}

class FormatStabilityTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(FormatStabilityTest, SameDomainSameFormat) {
  auto [a, b] = GetParam();
  EXPECT_EQ(FormatOf(a), FormatOf(b)) << a << " vs " << b;
}

INSTANTIATE_TEST_SUITE_P(
    SameFormatPairs, FormatStabilityTest,
    ::testing::Values(std::make_pair("M3 6AF", "BT7 1JL"),
                      std::make_pair("2019-01-02", "2021-12-30"),
                      std::make_pair("08:00-18:00", "07:30-20:15"),
                      std::make_pair("0161 496 0123", "0151 336 9876"),
                      std::make_pair("john.smith@mail.com", "a.b@c.org")));

}  // namespace
}  // namespace d3l

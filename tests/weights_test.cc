#include "core/weights.h"

#include <gtest/gtest.h>

#include "benchdata/synthetic_gen.h"
#include "eval/experiment.h"

namespace d3l::core {
namespace {

class WeightsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    benchdata::SyntheticOptions opts;
    opts.num_base_tables = 8;
    opts.derived_per_base = 7;
    opts.base_rows_min = 60;
    opts.base_rows_max = 120;
    opts.seed = 5;
    auto gen = benchdata::GenerateSynthetic(opts);
    ASSERT_TRUE(gen.ok());
    lake_ = new benchdata::GeneratedLake(std::move(*gen));
    engine_ = new D3LEngine();
    ASSERT_TRUE(engine_->IndexLake(lake_->lake).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete lake_;
    lake_ = nullptr;
  }

  static benchdata::GeneratedLake* lake_;
  static D3LEngine* engine_;
};

benchdata::GeneratedLake* WeightsTest::lake_ = nullptr;
D3LEngine* WeightsTest::engine_ = nullptr;

TEST_F(WeightsTest, LearnsFromGroundTruth) {
  auto targets = eval::SampleTargets(lake_->lake, 12, 3);
  auto related = [&](uint32_t t, uint32_t s) {
    return lake_->truth.TablesRelated(lake_->lake.table(t).name(),
                                      lake_->lake.table(s).name());
  };
  auto learned = LearnEvidenceWeights(*engine_, targets, related);
  ASSERT_TRUE(learned.ok()) << learned.status().ToString();

  // Weights are a normalized distribution.
  double sum = 0;
  for (double w : learned->weights.w) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);

  // The paper reports ~89% classifier accuracy; we require a comfortable
  // margin over chance on the training pairs.
  EXPECT_GE(learned->train_accuracy, 0.75) << "pairs=" << learned->num_pairs;
  EXPECT_GT(learned->num_pairs, 50u);
}

TEST_F(WeightsTest, CoefficientsAreNegativeOnDistances) {
  auto targets = eval::SampleTargets(lake_->lake, 10, 11);
  auto related = [&](uint32_t t, uint32_t s) {
    return lake_->truth.TablesRelated(lake_->lake.table(t).name(),
                                      lake_->lake.table(s).name());
  };
  auto learned = LearnEvidenceWeights(*engine_, targets, related);
  ASSERT_TRUE(learned.ok());
  // Larger distance must lower the relatedness probability for the
  // strongest evidence type.
  size_t best = 0;
  for (size_t t = 1; t < kNumEvidence; ++t) {
    if (learned->weights.w[t] > learned->weights.w[best]) best = t;
  }
  EXPECT_LT(learned->model.weights()[best], 0);
}

TEST_F(WeightsTest, RejectsEmptyTargets) {
  auto related = [](uint32_t, uint32_t) { return true; };
  EXPECT_FALSE(LearnEvidenceWeights(*engine_, {}, related).ok());
}

TEST_F(WeightsTest, RejectsSingleClassLabels) {
  auto targets = eval::SampleTargets(lake_->lake, 4, 3);
  auto never_related = [](uint32_t, uint32_t) { return false; };
  EXPECT_FALSE(LearnEvidenceWeights(*engine_, targets, never_related).ok());
}

TEST_F(WeightsTest, UnindexedEngineFails) {
  D3LEngine fresh;
  auto related = [](uint32_t, uint32_t) { return true; };
  EXPECT_FALSE(LearnEvidenceWeights(fresh, {0}, related).ok());
}

}  // namespace
}  // namespace d3l::core

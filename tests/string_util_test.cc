#include "common/string_util.h"

#include <gtest/gtest.h>

namespace d3l {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123-XY"), "123-xy");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("notrim"), "notrim");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleToken) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("none", "X", "Y"), "none");
}

TEST(StringUtilTest, ParseDoubleAcceptsPlainNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-12"), -12.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7.25 "), 7.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
}

TEST(StringUtilTest, ParseDoubleHandlesThousandsSeparators) {
  EXPECT_DOUBLE_EQ(*ParseDouble("12,345.6"), 12345.6);
  EXPECT_DOUBLE_EQ(*ParseDouble("1,000"), 1000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsNonNumbers) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("12abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
  EXPECT_FALSE(ParseDouble(",").has_value());
}

TEST(StringUtilTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_FALSE(LooksNumeric("M3 6AF"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
}

}  // namespace
}  // namespace d3l

#include "lsh/simhash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "embedding/vector_ops.h"

namespace d3l {
namespace {

Vec RandomUnit(Rng* rng, size_t dim) {
  Vec v(dim);
  for (float& x : v) x = static_cast<float>(rng->Gaussian());
  Normalize(&v);
  return v;
}

TEST(SimHashTest, Deterministic) {
  RandomProjectionHasher h(16, 128, 42);
  Rng rng(1);
  Vec v = RandomUnit(&rng, 16);
  BitSignature a = h.Sign(v);
  BitSignature b = h.Sign(v);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.bits, 128u);
}

TEST(SimHashTest, IdenticalVectorsZeroHamming) {
  RandomProjectionHasher h(8, 64, 7);
  Rng rng(2);
  Vec v = RandomUnit(&rng, 8);
  EXPECT_EQ(HammingDistance(h.Sign(v), h.Sign(v)), 0u);
  EXPECT_DOUBLE_EQ(EstimateCosine(h.Sign(v), h.Sign(v)), 1.0);
}

TEST(SimHashTest, OppositeVectorsMaxHamming) {
  RandomProjectionHasher h(8, 256, 7);
  Rng rng(3);
  Vec v = RandomUnit(&rng, 8);
  Vec neg = v;
  for (float& x : neg) x = -x;
  size_t hd = HammingDistance(h.Sign(v), h.Sign(neg));
  // Antipodal vectors disagree on every hyperplane (up to boundary ties).
  EXPECT_GT(hd, 250u);
  EXPECT_LT(EstimateCosine(h.Sign(v), h.Sign(neg)), -0.95);
  EXPECT_DOUBLE_EQ(EstimateCosineDistance(h.Sign(v), h.Sign(neg)), 1.0);
}

TEST(SimHashTest, OrthogonalVectorsHalfHamming) {
  RandomProjectionHasher h(2, 512, 11);
  Vec a = {1, 0};
  Vec b = {0, 1};
  double est = EstimateCosine(h.Sign(a), h.Sign(b));
  EXPECT_NEAR(est, 0.0, 0.15);
}

// Property sweep: the angle estimate tracks the true angle across the range.
class SimHashAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(SimHashAccuracyTest, CosineEstimateWithinTolerance) {
  double angle = GetParam();  // radians
  const size_t dim = 24;
  const size_t bits = 512;
  RandomProjectionHasher h(dim, bits, 99);
  Rng rng(17);
  // Build two unit vectors at the requested angle in a random 2D subspace.
  Vec u = RandomUnit(&rng, dim);
  Vec w = RandomUnit(&rng, dim);
  // Gram-Schmidt w against u.
  double proj = Dot(u, w);
  for (size_t i = 0; i < dim; ++i) w[i] = static_cast<float>(w[i] - proj * u[i]);
  Normalize(&w);
  Vec v(dim);
  for (size_t i = 0; i < dim; ++i) {
    v[i] = static_cast<float>(std::cos(angle) * u[i] + std::sin(angle) * w[i]);
  }
  double true_cos = std::cos(angle);
  double est = EstimateCosine(h.Sign(u), h.Sign(v));
  // Hamming/bits has stddev sqrt(p(1-p)/bits) <= 0.5/sqrt(512) ~ 0.022;
  // propagated through cos() stays below ~0.08 with 3-sigma margin.
  EXPECT_NEAR(est, true_cos, 0.12) << "angle=" << angle;
}

INSTANTIATE_TEST_SUITE_P(Angles, SimHashAccuracyTest,
                         ::testing::Values(0.1, 0.5, 1.0, 1.5708, 2.2, 3.0));

TEST(SimHashTest, HashSequenceRoundTripsBits) {
  RandomProjectionHasher h(8, 64, 5);
  Rng rng(4);
  Vec v = RandomUnit(&rng, 8);
  BitSignature sig = h.Sign(v);
  std::vector<uint64_t> seq = h.SignatureAsHashSequence(sig);
  ASSERT_EQ(seq.size(), 8u);  // 64 bits -> 8 bytes
  for (size_t b = 0; b < sig.bits; ++b) {
    uint64_t bit = (sig.words[b / 64] >> (b % 64)) & 1;
    uint64_t seq_bit = (seq[b / 8] >> (b % 8)) & 1;
    EXPECT_EQ(bit, seq_bit) << "bit " << b;
  }
}

TEST(SimHashTest, SimilarVectorsShareSequencePrefixMoreOften) {
  const size_t dim = 16;
  RandomProjectionHasher h(dim, 256, 21);
  Rng rng(5);
  Vec v = RandomUnit(&rng, dim);
  Vec close = v;
  close[0] += 0.05f;
  Normalize(&close);
  Vec far = RandomUnit(&rng, dim);
  EXPECT_LT(HammingDistance(h.Sign(v), h.Sign(close)),
            HammingDistance(h.Sign(v), h.Sign(far)));
}

}  // namespace
}  // namespace d3l

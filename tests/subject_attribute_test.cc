#include "core/subject_attribute.h"

#include <gtest/gtest.h>

#include "benchdata/realish_gen.h"
#include "tests/test_util.h"

namespace d3l::core {
namespace {

TEST(SubjectFeaturesTest, FeatureRangesAndShapes) {
  Table t = testutil::FigureS1();
  for (size_t c = 0; c < t.num_columns(); ++c) {
    auto f = SubjectAttributeFeatures(t, c);
    ASSERT_EQ(f.size(), 5u);
    for (double x : f) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
  // Leftmost column has the highest position feature.
  EXPECT_GT(SubjectAttributeFeatures(t, 0)[0], SubjectAttributeFeatures(t, 4)[0]);
  // Numeric column has textiness 0.
  EXPECT_DOUBLE_EQ(SubjectAttributeFeatures(t, 4)[3], 0.0);
  EXPECT_DOUBLE_EQ(SubjectAttributeFeatures(t, 0)[3], 1.0);
}

TEST(SubjectDetectorTest, PaperExampleSubjects) {
  // Section III-C: the subject attribute of S1 is Practice Name, of S2 is
  // Practice, of S3 is GP, and of T is Practice.
  SubjectAttributeDetector det;
  EXPECT_EQ(det.Detect(testutil::FigureS1()), 0);
  EXPECT_EQ(det.Detect(testutil::FigureS2()), 0);
  EXPECT_EQ(det.Detect(testutil::FigureS3()), 0);
  EXPECT_EQ(det.Detect(testutil::FigureTarget()), 0);
}

TEST(SubjectDetectorTest, PrefersDistinctTextOverRepeatedText) {
  // Column 1 is leftmost but has heavy repetition; column 0..
  Table t = testutil::MakeTable(
      "repeats", {"Category", "Entity"},
      {{"health", "Blackfriars Surgery"},
       {"health", "Radclife Care"},
       {"health", "Bolton Medical"},
       {"health", "Oxford Road Practice"}});
  SubjectAttributeDetector det;
  EXPECT_EQ(det.Detect(t), 1);
}

TEST(SubjectDetectorTest, NeverPicksNumericWhenTextExists) {
  Table t = testutil::MakeTable("nums_first", {"Rank", "Name"},
                                {{"1", "Alpha Co"}, {"2", "Beta Co"}, {"3", "Gamma Co"}});
  SubjectAttributeDetector det;
  int s = det.Detect(t);
  ASSERT_GE(s, 0);
  EXPECT_EQ(t.column(static_cast<size_t>(s)).type(), ColumnType::kString);
}

TEST(SubjectDetectorTest, EmptyTableGivesMinusOne) {
  Table t("empty");
  SubjectAttributeDetector det;
  EXPECT_EQ(det.Detect(t), -1);
}

TEST(SubjectDetectorTest, AllNumericFallsBackToBestColumn) {
  Table t = testutil::MakeTable("allnum", {"A", "B"}, {{"1", "2"}, {"3", "4"}});
  SubjectAttributeDetector det;
  EXPECT_GE(det.Detect(t), 0);
}

// Reproduces the paper's validation setup (§III-C footnote 2): train on
// labelled tables, check accuracy. The paper reports 89% over 350
// data.gov.uk tables; we require >= 75% on generator-labelled tables where
// the generator's entity column is the label.
TEST(SubjectDetectorTest, TrainedDetectorAccuracyOnGeneratedTables) {
  benchdata::RealishOptions opts;
  opts.num_clusters = 24;
  opts.tables_per_cluster_min = 3;
  opts.tables_per_cluster_max = 5;
  opts.rows_min = 40;
  opts.rows_max = 80;
  opts.entity_domain_prob = 1.0;  // every table has an entity column (col 0)
  opts.seed = 77;
  auto gen = GenerateRealish(opts);
  ASSERT_TRUE(gen.ok());
  const DataLake& lake = gen->lake;

  std::vector<const Table*> tables;
  std::vector<size_t> labels;
  for (const Table& t : gen->lake.tables()) {
    tables.push_back(&t);
    labels.push_back(0);  // generator puts the entity column first
  }
  size_t split = tables.size() / 2;
  std::vector<const Table*> train(tables.begin(), tables.begin() + split);
  std::vector<size_t> train_labels(labels.begin(), labels.begin() + split);

  auto det = SubjectAttributeDetector::Train(train, train_labels);
  ASSERT_TRUE(det.ok());

  size_t correct = 0;
  for (size_t i = split; i < tables.size(); ++i) {
    if (det->Detect(*tables[i]) == 0) ++correct;
  }
  double acc = static_cast<double>(correct) / static_cast<double>(tables.size() - split);
  EXPECT_GE(acc, 0.75) << "held-out subject detection accuracy";
  (void)lake;
}

TEST(SubjectDetectorTest, TrainRejectsBadInput) {
  EXPECT_FALSE(SubjectAttributeDetector::Train({}, {}).ok());
  Table t = testutil::FigureS1();
  EXPECT_FALSE(SubjectAttributeDetector::Train({&t}, {99}).ok());
}

}  // namespace
}  // namespace d3l::core

// Hot reload under live traffic (serving::HotReloader): Reload() must
// swap generations without pausing queries, in-flight queries must finish
// on the generation they captured (never a mix), a failed reload must
// leave the old generation serving, and post-quiesce results must be
// byte-identical to a freshly built engine over the final lake. The
// centerpiece is the stress test: 8 client threads hammering Submit
// across three back-to-back Reload() swaps with CSV mutations between,
// attributing every response to its generation via
// QueryStats::index_fingerprint.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/query.h"
#include "serving/discovery_service.h"
#include "serving/hot_reload.h"
#include "serving/manifest.h"
#include "serving/shard_builder.h"
#include "serving/sharded_engine.h"
#include "table/csv.h"
#include "table/lake.h"
#include "tests/test_util.h"

namespace d3l {
namespace {

namespace fs = std::filesystem;

void ExpectIdenticalResults(const core::SearchResult& expected,
                            const core::SearchResult& actual,
                            const std::string& context) {
  ASSERT_EQ(actual.ranked.size(), expected.ranked.size()) << context;
  for (size_t i = 0; i < expected.ranked.size(); ++i) {
    const core::TableMatch& e = expected.ranked[i];
    const core::TableMatch& a = actual.ranked[i];
    EXPECT_EQ(a.table_index, e.table_index) << context << " rank " << i;
    // Bitwise equality: a generation must reproduce its reference build's
    // floating-point work exactly.
    EXPECT_EQ(a.distance, e.distance) << context << " rank " << i;
    EXPECT_EQ(a.evidence_distances, e.evidence_distances) << context << " rank " << i;
    ASSERT_EQ(a.pairs.size(), e.pairs.size()) << context << " rank " << i;
    for (size_t p = 0; p < e.pairs.size(); ++p) {
      EXPECT_EQ(a.pairs[p].target_column, e.pairs[p].target_column) << context;
      EXPECT_EQ(a.pairs[p].attribute_id, e.pairs[p].attribute_id) << context;
      EXPECT_EQ(a.pairs[p].d, e.pairs[p].d) << context;
    }
  }
  ASSERT_EQ(actual.candidate_alignments.size(), expected.candidate_alignments.size())
      << context;
  for (const auto& [table, aligns] : expected.candidate_alignments) {
    auto it = actual.candidate_alignments.find(table);
    ASSERT_NE(it, actual.candidate_alignments.end()) << context;
    EXPECT_EQ(it->second, aligns) << context;
  }
}

class ReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("d3l_reload_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    csv_dir_ = dir_ / "lake";
    fs::create_directories(csv_dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Base(const std::string& name) const { return (dir_ / name).string(); }

  /// Figure-1 tables plus fillers: enough distinct tables for 3 shards
  /// with room to add/remove without emptying any shard.
  void WriteLakeCsvs() {
    WriteCsv(testutil::FigureS1());
    WriteCsv(testutil::FigureS2());
    WriteCsv(testutil::FigureS3());
    for (int salt = 0; salt < 2; ++salt) {
      WriteCsv(testutil::FillerColors(salt));
      WriteCsv(testutil::FillerInventory(salt));
      WriteCsv(testutil::FillerWeather(salt));
    }
  }

  void WriteCsv(const Table& t) {
    WriteCsvFile(t, (csv_dir_ / (t.name() + ".csv")).string()).CheckOK();
  }

  DataLake LoadLake() const {
    DataLake lake;
    lake.LoadDirectory(csv_dir_.string()).CheckOK();
    return lake;
  }

  /// One round of lake mutation: edit S2 in place (row count salted by
  /// the round so every round's bytes differ) and add a new filler table.
  /// Round 2 additionally removes a table.
  void MutateLake(int round) {
    Table s2 = testutil::FigureS2();
    for (int i = 0; i <= round; ++i) {
      s2.AddRow({"Round " + std::to_string(round) + " Practice " + std::to_string(i),
                 "Reload City", "RL" + std::to_string(round) + " 1AA",
                 std::to_string(100 * round + i)})
          .CheckOK();
    }
    WriteCsv(s2);
    WriteCsv(testutil::FillerColors(20 + round));
    if (round == 2) fs::remove(csv_dir_ / "filler_weather_1.csv");
  }

  fs::path dir_;
  fs::path csv_dir_;
};

TEST_F(ReloadTest, ReloadSwapsGenerationAndInvalidatesCache) {
  WriteLakeCsvs();
  serving::HotReloaderOptions options;
  options.sharding.num_shards = 3;
  options.service.inline_execution = true;
  auto opened = serving::HotReloader::Open(csv_dir_.string(), Base("dep"), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serving::HotReloader& server = **opened;
  const uint64_t fp_before = server.service().Info().index_fingerprint;

  const Table target = testutil::FigureTarget();
  serving::QueryRequest request;
  request.target = &target;
  request.k = 5;
  serving::QueryResponse miss = server.service().Query(request);
  ASSERT_TRUE(miss.result.ok()) << miss.result.status().ToString();
  EXPECT_FALSE(miss.stats.cache_hit);
  EXPECT_EQ(miss.stats.index_fingerprint, fp_before);
  serving::QueryResponse hit = server.service().Query(request);
  ASSERT_TRUE(hit.result.ok());
  EXPECT_TRUE(hit.stats.cache_hit);

  MutateLake(1);
  auto report = server.Reload();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->swapped);
  EXPECT_GE(report->shards_rebuilt, 1u);
  // Untouched shards share the old generation's in-memory replicas.
  EXPECT_GE(report->replicas_reused, 1u);
  EXPECT_NE(report->index_fingerprint, fp_before);
  EXPECT_EQ(server.service().Info().index_fingerprint, report->index_fingerprint);

  // Identical request against the new generation: the fingerprint folded
  // into the cache key changed, so the entry cached above can never hit.
  serving::QueryResponse after = server.service().Query(request);
  ASSERT_TRUE(after.result.ok()) << after.result.status().ToString();
  EXPECT_FALSE(after.stats.cache_hit);
  EXPECT_EQ(after.stats.index_fingerprint, report->index_fingerprint);

  // The new generation answers byte-identically to a freshly built
  // single engine over the mutated lake.
  DataLake lake = LoadLake();
  core::D3LEngine fresh;
  fresh.IndexLake(lake).CheckOK();
  auto direct = fresh.Search(target, 5);
  ASSERT_TRUE(direct.ok());
  ExpectIdenticalResults(*direct, *after.result, "post-reload vs fresh engine");

  serving::ReloadStats stats = server.Stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.failed_reloads, 0u);
  EXPECT_EQ(stats.index_fingerprint, report->index_fingerprint);
}

TEST_F(ReloadTest, NoOpReloadKeepsFingerprintAndCachedEntries) {
  WriteLakeCsvs();
  serving::HotReloaderOptions options;
  options.sharding.num_shards = 2;
  options.service.inline_execution = true;
  auto opened = serving::HotReloader::Open(csv_dir_.string(), Base("dep"), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serving::HotReloader& server = **opened;
  const uint64_t fp = server.service().Info().index_fingerprint;

  const Table target = testutil::FigureTarget();
  serving::QueryRequest request;
  request.target = &target;
  request.k = 5;
  ASSERT_TRUE(server.service().Query(request).result.ok());

  auto report = server.Reload();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->swapped);
  EXPECT_EQ(report->index_fingerprint, fp);
  EXPECT_EQ(server.service().Info().index_fingerprint, fp);
  EXPECT_EQ(server.Stats().noop_reloads, 1u);
  EXPECT_EQ(server.Stats().reloads, 0u);

  // Nothing was swapped, so the entry cached before the no-op still hits.
  serving::QueryResponse hit = server.service().Query(request);
  ASSERT_TRUE(hit.result.ok());
  EXPECT_TRUE(hit.stats.cache_hit);
}

TEST_F(ReloadTest, FailedReloadKeepsOldGenerationServing) {
  WriteLakeCsvs();
  serving::HotReloaderOptions options;
  options.sharding.num_shards = 3;
  options.service.inline_execution = true;
  auto opened = serving::HotReloader::Open(csv_dir_.string(), Base("dep"), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serving::HotReloader& server = **opened;
  const uint64_t fp = server.service().Info().index_fingerprint;

  const Table target = testutil::FigureTarget();
  serving::QueryRequest request;
  request.target = &target;
  request.k = 5;
  serving::QueryResponse before = server.service().Query(request);
  ASSERT_TRUE(before.result.ok());

  // Shrink the lake to a single table: 3 planned shards can no longer all
  // be non-empty, so UpdateShards refuses and the reload fails.
  for (const auto& entry : fs::directory_iterator(csv_dir_)) {
    if (entry.path().filename() != "s1_gp_practices.csv") fs::remove(entry.path());
  }
  auto report = server.Reload();
  ASSERT_FALSE(report.ok());

  // The old generation keeps serving the same bytes, and the deployment
  // on disk is still intact and openable.
  EXPECT_EQ(server.Stats().failed_reloads, 1u);
  EXPECT_EQ(server.service().Info().index_fingerprint, fp);
  serving::QueryResponse after = server.service().Query(request);
  ASSERT_TRUE(after.result.ok());
  EXPECT_EQ(after.stats.index_fingerprint, fp);
  ExpectIdenticalResults(*before.result, *after.result, "after failed reload");
  EXPECT_TRUE(serving::ShardedEngine::Open(serving::ManifestPath(Base("dep"))).ok());
}

// The tentpole stress: 8 client threads hammer Submit while the main
// thread runs three back-to-back Reload() swaps with lake mutations
// between. Every future must resolve, every response must byte-match the
// generation its fingerprint names (no mixing), and post-quiesce results
// must byte-match a freshly built engine over the final lake. Run under
// ASan/TSan in CI.
TEST_F(ReloadTest, EightClientThreadsAcrossThreeBackToBackReloads) {
  WriteLakeCsvs();
  serving::HotReloaderOptions options;
  options.sharding.num_shards = 3;
  options.service.num_threads = 4;
  auto opened = serving::HotReloader::Open(csv_dir_.string(), Base("dep"), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serving::HotReloader& server = **opened;

  const Table targets[2] = {testutil::FigureTarget(), testutil::FillerInventory(5)};

  // Every generation ever published, pinned by its fingerprint. The
  // shared_ptrs keep swapped-out generations alive for the verification
  // pass, exactly as an in-flight query's snapshot would.
  std::map<uint64_t, std::shared_ptr<const serving::ShardedEngine>> generations;
  generations[server.service().Info().index_fingerprint] = server.engine();

  struct Attributed {
    uint64_t fingerprint;
    size_t target_index;
    core::SearchResult result;
  };
  constexpr size_t kClients = 8;
  std::vector<std::vector<Attributed>> per_thread(kClients);
  std::atomic<bool> stop{false};
  std::atomic<size_t> submitted{0};
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t t = 0; t < 2; ++t) {
          serving::QueryRequest request;
          request.target = &targets[t];
          request.k = 5;
          submitted.fetch_add(1, std::memory_order_relaxed);
          serving::QueryResponse response = server.service().Submit(request).get();
          resolved.fetch_add(1, std::memory_order_relaxed);
          if (!response.result.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          per_thread[c].push_back({response.stats.index_fingerprint, t,
                                   *std::move(response.result)});
        }
      }
    });
  }

  // Three back-to-back reload swaps under live traffic. Only EXPECTs
  // here: a fatal assertion would return with the clients still running.
  std::string reload_error;
  for (int round = 1; round <= 3 && reload_error.empty(); ++round) {
    MutateLake(round);
    auto report = server.Reload();
    if (!report.ok()) {
      reload_error = report.status().ToString();
      break;
    }
    EXPECT_TRUE(report->swapped) << "round " << round;
    EXPECT_GE(report->replicas_reused, 1u) << "round " << round;
    EXPECT_EQ(generations.count(report->index_fingerprint), 0u)
        << "round " << round << " reused a fingerprint";
    generations[report->index_fingerprint] = server.engine();
  }
  stop.store(true);
  for (std::thread& th : clients) th.join();
  ASSERT_TRUE(reload_error.empty()) << reload_error;

  // Every submitted future resolved, none failed.
  EXPECT_EQ(resolved.load(), submitted.load());
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(server.Stats().reloads, 3u);
  EXPECT_EQ(server.Stats().failed_reloads, 0u);
  ASSERT_EQ(generations.size(), 4u);

  // Attribute each response to the generation its fingerprint names and
  // demand byte-identity with that generation's own Search — a response
  // mixing shards from two generations cannot match either reference.
  std::map<std::pair<uint64_t, size_t>, core::SearchResult> expected;
  for (const auto& [fp, engine] : generations) {
    for (size_t t = 0; t < 2; ++t) {
      auto reference = engine->Search(targets[t], 5);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      expected.emplace(std::make_pair(fp, t), *std::move(reference));
    }
  }
  size_t checked = 0;
  std::map<uint64_t, size_t> per_generation;
  for (const auto& responses : per_thread) {
    for (const Attributed& r : responses) {
      auto it = expected.find({r.fingerprint, r.target_index});
      ASSERT_NE(it, expected.end())
          << "response attributed to unknown generation " << r.fingerprint;
      ExpectIdenticalResults(it->second, r.result,
                             "generation " + std::to_string(r.fingerprint) +
                                 " target " + std::to_string(r.target_index));
      ++per_generation[r.fingerprint];
      ++checked;
    }
  }
  EXPECT_EQ(checked, resolved.load());
  // The reloads were slow enough (full shard rebuilds) that more than one
  // generation must have answered live traffic.
  EXPECT_GE(per_generation.size(), 2u);

  // Post-quiesce: the surviving generation answers byte-identically to a
  // from-scratch engine over the final lake state.
  DataLake final_lake = LoadLake();
  core::D3LEngine fresh;
  fresh.IndexLake(final_lake).CheckOK();
  for (size_t t = 0; t < 2; ++t) {
    auto direct = fresh.Search(targets[t], 5);
    ASSERT_TRUE(direct.ok());
    serving::QueryRequest request;
    request.target = &targets[t];
    request.k = 5;
    request.bypass_cache = true;
    serving::QueryResponse response = server.service().Query(request);
    ASSERT_TRUE(response.result.ok()) << response.result.status().ToString();
    ExpectIdenticalResults(*direct, *response.result,
                           "post-quiesce target " + std::to_string(t));
  }
}

TEST_F(ReloadTest, WatcherPicksUpDirectoryChanges) {
  WriteLakeCsvs();
  serving::HotReloaderOptions options;
  options.sharding.num_shards = 2;
  options.service.inline_execution = true;
  options.watch_interval_ms = 25;
  auto opened = serving::HotReloader::Open(csv_dir_.string(), Base("dep"), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  serving::HotReloader& server = **opened;
  const uint64_t fp_before = server.service().Info().index_fingerprint;

  server.StartWatching();
  WriteCsv(testutil::FillerColors(31));
  // The poller checksums the directory every 25ms and reloads on the
  // first stale check; allow generous slack for sanitizer builds.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.service().Info().index_fingerprint == fp_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.StopWatching();

  serving::ReloadStats stats = server.Stats();
  EXPECT_NE(server.service().Info().index_fingerprint, fp_before)
      << "watcher never picked up the new CSV";
  EXPECT_GE(stats.watch_polls, 1u);
  EXPECT_GE(stats.reloads, 1u);

  // The watched-in generation serves the grown lake exactly.
  DataLake lake = LoadLake();
  core::D3LEngine fresh;
  fresh.IndexLake(lake).CheckOK();
  const Table target = testutil::FigureTarget();
  auto direct = fresh.Search(target, 5);
  ASSERT_TRUE(direct.ok());
  serving::QueryRequest request;
  request.target = &target;
  request.k = 5;
  serving::QueryResponse response = server.service().Query(request);
  ASSERT_TRUE(response.result.ok());
  ExpectIdenticalResults(*direct, *response.result, "watched reload");
}

}  // namespace
}  // namespace d3l
